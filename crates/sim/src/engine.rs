use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use congest_graph::{DeltaSet, EdgeId, Graph, NodeId, ShardPartition};
use rand::rngs::SmallRng;
use rayon::prelude::*;

use crate::message::bits_for_count;
use crate::rng::{node_rng, phase_seed};
use crate::sched::AsyncScheduler;
use crate::{Adversary, Context, Inbox, Message, NodeInfo, PackedMsg, Protocol, Status};

/// Phase tag mixed into the master seed for the RNG of a *restarted* node
/// (self-stabilization mode), so its post-restart coin stream is fresh —
/// independent of its pre-crash stream and of every other node's.
const RESTART_STREAM_SALT: u64 = 0x8E57_A87E_D000_0009;

/// Phase tag mixed into the master seed for the RNG of a node *rejoining*
/// after a churn departure ([`Adversary::node_join_prob`]), keyed by the
/// rejoin round — same construction as [`RESTART_STREAM_SALT`], on a
/// separate stream so churn joins and crash restarts never share coins.
const CHURN_STREAM_SALT: u64 = 0xC409_11ED_0000_000D;

/// Simulation configuration: model (bit budget) and safety limits.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Per-message bit budget; `None` simulates the LOCAL model
    /// (unbounded messages). Budget overruns are *recorded*, not fatal —
    /// see [`RunStats::budget_violations`].
    pub bit_budget: Option<usize>,
    /// Hard cap on the number of rounds; nodes still active afterwards
    /// produce `None` outputs and [`RunOutcome::completed`] is false.
    pub max_rounds: usize,
    /// Record every message as a [`MessageTrace`] (memory-hungry; meant
    /// for congestion analyses on small graphs). Tracing forces the
    /// delivery phase onto a sequential ascending-node-id path and disables
    /// active-slot compaction so trace order is reproducible.
    pub record_traces: bool,
    /// Deterministic fault adversary (seeded message drops, duplication,
    /// reordering, corruption, and node crashes with optional restart;
    /// see [`Adversary`]). `None` — the default everywhere — is the
    /// fault-free engine the gnp-1000 fingerprints pin bit-identical;
    /// the adversary's coin stream is keyed by its own seed, so enabling
    /// it never perturbs the protocol's RNG draws.
    pub adversary: Option<Adversary>,
    /// Seeded asynchronous scheduler (see [`AsyncScheduler`]): each
    /// delivered message gains a deterministic per-edge extra delay.
    /// `None` — and any scheduler with `max_delay() == 0` — is the
    /// synchronous engine, bit-identical to the fingerprinted path.
    pub scheduler: Option<AsyncScheduler>,
}

impl SimConfig {
    /// CONGEST configuration for graph `g`: per-message budget of
    /// `8·(⌈log₂ n⌉ + max(⌈log₂ W⌉, ⌈log₂ n⌉))` bits, the usual reading of
    /// "a constant number of ids and weights per message" with weights
    /// polynomial in `n`.
    pub fn congest_for(g: &Graph) -> Self {
        let id_bits = bits_for_count(g.num_nodes().max(2));
        let weight_bits =
            crate::bits_for_value(g.max_node_weight().max(g.max_edge_weight())).max(id_bits);
        SimConfig {
            bit_budget: Some(8 * (id_bits + weight_bits)),
            max_rounds: 1_000_000,
            record_traces: false,
            adversary: None,
            scheduler: None,
        }
    }

    /// LOCAL configuration: unbounded message size.
    pub fn local() -> Self {
        SimConfig {
            bit_budget: None,
            max_rounds: 1_000_000,
            record_traces: false,
            adversary: None,
            scheduler: None,
        }
    }

    /// Returns the configuration with a different round cap.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Returns the configuration with message tracing enabled.
    pub fn with_traces(mut self) -> Self {
        self.record_traces = true;
        self
    }

    /// Returns the configuration with the given fault adversary enabled.
    pub fn with_adversary(mut self, adversary: Adversary) -> Self {
        adversary.validate();
        self.adversary = Some(adversary);
        self
    }

    /// Returns the configuration with the given asynchronous scheduler
    /// enabled.
    pub fn with_scheduler(mut self, scheduler: AsyncScheduler) -> Self {
        scheduler.validate();
        self.scheduler = Some(scheduler);
        self
    }

    /// Re-checks adversary and scheduler parameters (for struct-literal
    /// construction), panicking with a message that names the offending
    /// field. [`Engine::build`] calls this, so no run can start on
    /// silently mis-coining NaN or out-of-range probabilities.
    pub fn validate(&self) {
        if let Some(adv) = &self.adversary {
            adv.validate();
        }
        if let Some(sched) = &self.scheduler {
            sched.validate();
        }
    }
}

/// One recorded message (requires [`SimConfig::record_traces`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageTrace {
    /// Round in which the message was *sent*.
    pub round: usize,
    /// Sender node.
    pub from: NodeId,
    /// Receiver node.
    pub to: NodeId,
    /// Message size in bits.
    pub bits: usize,
}

/// Aggregate statistics of a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of communication rounds executed (excluding `init`).
    pub rounds: usize,
    /// Total messages sent (including ones dropped at halted receivers).
    pub total_messages: u64,
    /// Largest message observed, in bits.
    pub max_message_bits: usize,
    /// Messages exceeding the configured bit budget.
    pub budget_violations: u64,
    /// Messages whose receiver was *dead* — halted, or crash-stopped by
    /// the [`Adversary`] — in the sending round or earlier. Round
    /// semantics are order-independent: a message sent in round `r` is
    /// dropped iff its receiver died in some round `≤ r`, regardless of
    /// the relative node ids of sender and receiver.
    pub dropped_messages: u64,
    /// Messages to *live* receivers dropped in flight by the configured
    /// [`Adversary`] (always 0 when [`SimConfig::adversary`] is `None`).
    /// Counted separately from
    /// [`dropped_messages`](Self::dropped_messages), so in-flight
    /// injected losses stay distinguishable from dead-receiver losses
    /// (note that on crash-adversary runs the latter still includes
    /// crash-induced drops — check
    /// [`crashed_nodes`](Self::crashed_nodes) to attribute them).
    pub adversary_dropped_messages: u64,
    /// Nodes crash-stopped by the configured [`Adversary`]. Without
    /// restarts a crashed node produces no output, so any such run
    /// reports [`RunOutcome::completed`] = `false`; in restart mode
    /// ([`Adversary::restart_after`]) the node may still rejoin, halt,
    /// and complete the run.
    pub crashed_nodes: u64,
    /// Messages assigned a nonzero extra delay by the configured
    /// [`AsyncScheduler`] (always 0 without one, or with a zero-delay
    /// distribution).
    pub delayed_messages: u64,
    /// Messages re-delivered one round late by the [`Adversary`]'s
    /// duplication coin.
    pub duplicated_messages: u64,
    /// Messages garbled in flight by the [`Adversary`]'s corruption coin
    /// — whether the payload surfaced mutated or was discarded by the
    /// modeled transport checksum (see [`Message::corrupted`]).
    pub corrupted_messages: u64,
    /// Crashed nodes that rejoined with reset state
    /// ([`Adversary::restart_after`] self-stabilization mode). A node
    /// crashing twice counts twice, in both this and
    /// [`crashed_nodes`](Self::crashed_nodes).
    pub restarted_nodes: u64,
    /// Undirected edges whose link state was toggled by the
    /// [`Adversary`]'s churn coin ([`Adversary::edge_flip_prob`]). An
    /// edge flipping down and back up counts twice.
    pub edges_flipped: u64,
    /// Departed nodes readmitted by the churn join coin
    /// ([`Adversary::node_join_prob`]), booting with reset protocol
    /// state. A node leaving and rejoining twice counts twice.
    pub nodes_joined: u64,
    /// Present nodes removed by the churn leave coin
    /// ([`Adversary::node_leave_prob`]); they stop computing and messages
    /// to them are dropped, until (and unless) a join coin readmits them.
    pub nodes_left: u64,
}

/// Result of running a protocol to completion (or to the round cap).
#[derive(Clone, Debug)]
pub struct RunOutcome<O> {
    /// Per-node outputs; `None` for nodes still active when the round cap
    /// was reached.
    pub outputs: Vec<Option<O>>,
    /// Aggregate statistics.
    pub stats: RunStats,
    /// Whether every node produced an output — halted before the round
    /// cap and was not lost to a permanent crash. (In restart mode a
    /// crashed node can rejoin and still halt, so `crashed_nodes > 0`
    /// does not by itself preclude completion.)
    pub completed: bool,
    /// Message traces, if [`SimConfig::record_traces`] was set.
    pub traces: Vec<MessageTrace>,
}

impl<O> RunOutcome<O> {
    /// Unwraps all outputs, panicking if any node failed to halt.
    ///
    /// ```
    /// use congest_graph::generators;
    /// use congest_sim::{run_protocol, Context, Inbox, Protocol, SimConfig, Status};
    ///
    /// struct MyId;
    /// impl Protocol for MyId {
    ///     type Msg = ();
    ///     type Output = u32;
    ///     fn init(&mut self, _ctx: &mut Context<'_, ()>) {}
    ///     fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: Inbox<'_, ()>)
    ///         -> Status<u32>
    ///     {
    ///         Status::Halt(ctx.id().0)
    ///     }
    /// }
    ///
    /// let outcome = run_protocol(&generators::cycle(3), SimConfig::local(), |_| MyId, 0);
    /// assert_eq!(outcome.into_outputs(), vec![0, 1, 2]);
    /// ```
    ///
    /// # Panics
    /// Panics if the run did not complete.
    pub fn into_outputs(self) -> Vec<O> {
        assert!(
            self.completed,
            "run hit the round cap before all nodes halted"
        );
        self.outputs
            .into_iter()
            .map(|o| o.expect("completed runs have all outputs"))
            .collect()
    }
}

/// Result of [`Engine::run_sharded`]: the ordinary [`RunOutcome`] (bit-
/// identical to [`Engine::run`] for the same seed) plus the sharding
/// cost surface — how much of the protocol's traffic crossed shard
/// boundaries and therefore counts as coordinator↔worker communication
/// in a sharded deployment.
#[derive(Clone, Debug)]
pub struct ShardedRun<O> {
    /// The protocol run itself, indistinguishable from a sequential run.
    pub outcome: RunOutcome<O>,
    /// Number of shards the slot space was partitioned into.
    pub shards: usize,
    /// Undirected edges whose endpoints live in different shards.
    pub cross_shard_edges: usize,
    /// Delivered messages that crossed a shard boundary (both directions
    /// counted, like [`RunStats::total_messages`]). Kept out of
    /// [`RunStats`] so stats stay executor-independent.
    pub cross_shard_messages: u64,
}

/// Everything one node owns during a run: its protocol instance, static
/// info, private RNG, and its halt latch. Message buffers live *outside*
/// the slot, in the engine's two flat message planes; the slot only
/// remembers where its CSR row starts.
///
/// Bundling the per-node state lets a synchronous round be executed as a
/// *compute phase* (each slot stepped independently — sequentially or in
/// parallel) followed by a *delivery phase* (halts applied, send-plane rows
/// scattered into the receive plane), which is what makes the round
/// semantics independent of node processing order.
struct NodeSlot<'g, P: Protocol> {
    proto: P,
    info: NodeInfo<'g>,
    /// `reverse_port[p]` = the port at `neighbor(p)` that leads back to
    /// this node; used to deliver into the receiver's port-indexed inbox
    /// row. Borrowed straight from the graph's precomputed CSR table.
    reverse_port: &'g [u32],
    /// `neighbor_edges[p]` = the undirected edge id behind port `p`;
    /// consulted by delivery when the churn adversary's edge-down bitmap
    /// is live. Borrowed from the graph's CSR table.
    neighbor_edges: &'g [EdgeId],
    /// Start of this node's row in the CSR-shaped message planes
    /// (`graph.row_offsets()[id]`); the row length is the node's degree.
    row_start: u32,
    /// Start of this node's occupancy words in the planes' bitmaps
    /// (`occ_offsets[id]`); the row spans `⌈degree / 64⌉` words.
    occ_start: u32,
    rng: SmallRng,
    /// Output produced this round, if the node chose to halt; applied to
    /// the alive set only at the delivery phase so that drop decisions
    /// cannot observe a half-updated round.
    pending_halt: Option<P::Output>,
    active: bool,
    /// Set when the node rejoins after a crash (restart mode): its next
    /// compute phase runs `init` — with the current round number — instead
    /// of `round`, exactly like a node booting with reset state.
    needs_init: bool,
}

/// Raw shared handle to one message plane: a flat array of packed payload
/// *words* (`u64`, one per directed edge — length `2m`, shaped exactly
/// like the graph's CSR block, so the word for `(node v, port p)` is
/// `row_offsets[v] + p`) plus a word-aligned occupancy bitmap. The bitmap
/// is laid out per node — node `v`'s occupancy words start at
/// `occ_offsets[v]` and span `⌈degree(v) / 64⌉` words — so the compute
/// phase can take plain `&mut [u64]` occupancy rows of distinct nodes
/// without sharing any word across threads. Payload words of silent ports
/// are stale garbage; the occupancy bit is the only truth.
///
/// The handle deliberately erases Rust's aliasing information so disjoint
/// CSR rows (compute phase) and disjoint directed-edge cells (delivery
/// phase) can be written from multiple threads. Every `unsafe` access site
/// states which disjointness argument makes it sound. The one genuinely
/// shared location — a receiver's occupancy word, targeted by up to 64
/// concurrent senders during delivery — is accessed exclusively through
/// the atomic [`occ_fetch_or`](Self::occ_fetch_or), never through a
/// reference, during that phase.
struct PlanePtr {
    words: *mut u64,
    occ: *mut u64,
    words_len: usize,
    occ_len: usize,
}

impl Clone for PlanePtr {
    fn clone(&self) -> Self {
        *self
    }
}
impl Copy for PlanePtr {}

// SAFETY: a `PlanePtr` is only a capability to *derive* references (or
// atomic views); all derivations happen under the row/cell disjointness
// contracts documented on `words_row` / `occ_row` / `write_word` /
// `occ_fetch_or`, and the payload is plain `u64`s. No reference is ever
// shared across threads through it.
unsafe impl Send for PlanePtr {}
// SAFETY: as for `Send` above — sharing the handle only shares the
// *capability*; actual access is serialized per row/cell by the engine's
// disjointness contracts (or made atomic, for delivery's occupancy bits).
unsafe impl Sync for PlanePtr {}

impl PlanePtr {
    fn new(words: &mut Vec<u64>, occ: &mut Vec<u64>) -> Self {
        PlanePtr {
            words: words.as_mut_ptr(),
            occ: occ.as_mut_ptr(),
            words_len: words.len(),
            occ_len: occ.len(),
        }
    }

    /// Mutable view of the payload row `start..start + len`.
    ///
    /// # Safety
    /// The caller must guarantee that no other live reference (on this or
    /// any other thread) overlaps the row. The engine upholds this by only
    /// handing out rows keyed by node id — CSR rows of distinct nodes are
    /// disjoint, and each node id occurs in exactly one `NodeSlot`.
    // The `&self -> &mut` shape is the point of the type: exclusivity is
    // a caller obligation (see Safety), exactly like `UnsafeCell::get`.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    unsafe fn words_row(&self, start: usize, len: usize) -> &mut [u64] {
        debug_assert!(start + len <= self.words_len, "plane row out of bounds");
        std::slice::from_raw_parts_mut(self.words.add(start), len)
    }

    /// Mutable view of one node's occupancy words,
    /// `start..start + len` with `len = ⌈degree / 64⌉`.
    ///
    /// # Safety
    /// As for [`words_row`](Self::words_row) — occupancy rows are
    /// word-aligned per node, so rows of distinct nodes never share a
    /// word. Must not be held while any thread may call
    /// [`occ_fetch_or`](Self::occ_fetch_or) on this plane (the engine's
    /// compute and delivery phases never overlap).
    #[allow(clippy::mut_from_ref)]
    #[inline]
    unsafe fn occ_row(&self, start: usize, len: usize) -> &mut [u64] {
        debug_assert!(start + len <= self.occ_len, "occupancy row out of bounds");
        std::slice::from_raw_parts_mut(self.occ.add(start), len)
    }

    /// Plain (non-atomic) write of one payload word.
    ///
    /// # Safety
    /// The caller must guarantee the cell is not accessed concurrently.
    /// The delivery phase upholds this by addressing cells by *directed
    /// edge* (`row_offsets[to] + reverse_port`), and each directed edge
    /// has exactly one sender.
    #[inline]
    unsafe fn write_word(&self, idx: usize, word: u64) {
        debug_assert!(idx < self.words_len, "plane cell out of bounds");
        *self.words.add(idx) = word;
    }

    /// Atomically ORs `mask` into occupancy word `idx`, returning the
    /// prior word (Relaxed: the bits carry no payload ordering — the
    /// phase-ending thread join publishes everything).
    ///
    /// This is delivery's receiver-bit set: up to 64 senders (one per
    /// port covered by the word) may land concurrently on one receiver's
    /// occupancy word, so the RMW must be atomic even though every
    /// *payload* cell has a unique writer. The returned prior word doubles
    /// as the collision detector — a set bit means a message of an earlier
    /// phase already occupied the cell (async ring only).
    ///
    /// # Safety
    /// `idx < occ_len`, and no thread may hold a `&mut` over the word
    /// (the engine confines `occ_row` references to the compute phase).
    #[inline]
    unsafe fn occ_fetch_or(&self, idx: usize, mask: u64) -> u64 {
        debug_assert!(idx < self.occ_len, "occupancy word out of bounds");
        AtomicU64::from_ptr(self.occ.add(idx)).fetch_or(mask, Ordering::Relaxed)
    }
}

/// The send plane and the *ring* of receive planes of a run, handed to
/// the compute and delivery phases together.
///
/// Synchronous runs use a ring of one plane — exactly the two-plane
/// engine the fingerprints pin. An [`AsyncScheduler`] with maximum delay
/// `d` (plus one extra plane when the duplication adversary is on, whose
/// copies trail originals by a round) widens the ring to `d + 1 (+ 1)`
/// planes indexed by *arrival round* modulo the ring length: delivery in
/// round `r` writes arrivals `r + 1 ..= r + 1 + d (+ 1)`, and the compute
/// phase of round `t` reads (and clears) plane `t % len`, so a plane is
/// always drained before the ring cycles back onto it.
struct Planes {
    send: PlanePtr,
    recv: Vec<PlanePtr>,
    /// Inbox-reordering adversary, pre-filtered to `None` when it cannot
    /// fire; consulted by the compute phase, which permutes its own
    /// (exclusively held) inbox row before reading it.
    reorder: Option<Adversary>,
}

impl Planes {
    /// The receive plane messages arriving in `arrival_round` land in.
    #[inline]
    fn recv_for(&self, arrival_round: usize) -> &PlanePtr {
        &self.recv[arrival_round % self.recv.len()]
    }
}

/// Read-only context the delivery phase needs besides the slots.
struct DeliverArgs<'a> {
    /// `graph.row_offsets()` — maps a receiver id to its payload row.
    row_offsets: &'a [u32],
    /// Prefix sums of `⌈degree / 64⌉` — maps a receiver id to its
    /// occupancy row (see [`PlanePtr`]).
    occ_offsets: &'a [u32],
    /// Liveness per node id, with this round's halts already applied.
    alive: &'a [bool],
    /// [`SimConfig::bit_budget`].
    bit_budget: Option<usize>,
    /// The round being delivered, so adversary and scheduler coins can be
    /// keyed by `(round, from, to)` — pure functions, independent of
    /// delivery order and parallel chunking.
    round: usize,
    /// Per-message fault adversary (drop / duplicate / corrupt coins),
    /// pre-filtered to `None` when none of those can fire so the
    /// fault-free hot path tests one `Option` discriminant only.
    adversary: Option<Adversary>,
    /// Asynchronous delay scheduler, pre-filtered to `None` when its
    /// maximum delay is zero (the synchronous case).
    scheduler: Option<AsyncScheduler>,
    /// Link-state bitmap of the churn adversary, one bit per undirected
    /// edge id (set = down: messages crossing the edge are silently
    /// discarded). `None` whenever [`Adversary::edge_flip_prob`] is zero,
    /// so the static path never tests it per message.
    edge_down: Option<&'a [u64]>,
}

/// Per-chunk statistics accumulator for the delivery phase; merged into
/// [`RunStats`] with commutative operations (sums and max), so parallel
/// chunk order cannot change the result.
#[derive(Default)]
struct Tally {
    total_messages: u64,
    max_message_bits: usize,
    budget_violations: u64,
    dropped_messages: u64,
    adversary_dropped_messages: u64,
    delayed_messages: u64,
    duplicated_messages: u64,
    corrupted_messages: u64,
}

/// Minimum active slots *per worker* below which `run_parallel` steps and
/// delivers inline: spawning workers for a nearly-drained (or small) round
/// costs more than the round. Scaling the cutoff by the worker count —
/// rather than the old flat 256-slot threshold — is what fixed the n=1000
/// `run_parallel` regression in `BENCH_engine.json`: on an 8-thread host a
/// 1000-node round handed each worker only ~125 slots, and the
/// spawn + per-chunk tally flush (8 atomics per chunk — cheap, but not
/// free) cost more than stepping 1000 nodes inline. The per-chunk merge
/// itself is sound and stays: one commutative flush per *chunk*, not per
/// slot, is already the minimal synchronization.
const PAR_MIN_SLOTS_PER_WORKER: usize = 1024;

/// Runs one [`Protocol`] instance per node of a graph.
///
/// Build with [`Engine::build`], execute with [`Engine::run`] (or
/// [`Engine::run_parallel`], which produces bit-identical results). See the
/// crate-level docs for an end-to-end example.
///
/// # Round semantics
///
/// Each synchronous round has two phases:
///
/// 1. **Compute** — every active node's [`Protocol::round`] runs against
///    the messages sent to it in the previous round, filling its send-plane
///    row and possibly deciding to halt. Nodes cannot observe each other
///    mid-round, so the execution order (including parallel execution)
///    cannot affect results.
/// 2. **Deliver** — halts are applied, then every send-plane row is
///    scattered into the receive plane: the message node `v` sent through
///    port `p` lands in cell `row_offsets[u] + reverse_port`, i.e. the
///    receiver `u`'s own port-indexed inbox row. A message is dropped
///    (counted in [`RunStats::dropped_messages`]) iff its receiver halted
///    in the sending round or earlier. Distinct directed edges map to
///    distinct cells, so delivery parallelizes without locks while staying
///    bit-identical.
///
/// # Memory discipline
///
/// Every message plane (2·`m` packed payload words plus the occupancy
/// bitmap — see [`plane_bytes_for`]), the slot table, and every other
/// buffer of the round loop are allocated once, in `build`/`run`; the
/// steady-state loop performs **zero engine-side heap allocations** (the
/// traced path, which pushes [`MessageTrace`]s, is the documented
/// small-graph exception). Halted nodes are swap-compacted out of the
/// active prefix, so late rounds iterate only live slots.
pub struct Engine<'g, P: Protocol> {
    graph: &'g Graph,
    config: SimConfig,
    infos: Vec<NodeInfo<'g>>,
    nodes: Vec<P>,
    /// Kept beyond `build` for the restart adversary, which re-instantiates
    /// a rejoining node's protocol from scratch (self-stabilization:
    /// restarted nodes boot with reset state, not a snapshot).
    factory: Box<dyn FnMut(&NodeInfo<'g>) -> P + 'g>,
}

impl<'g, P: Protocol> Engine<'g, P> {
    /// Creates an engine, instantiating the protocol at every node via
    /// `factory` (called in ascending node-id order).
    ///
    /// Zero-copy: each [`NodeInfo`] borrows its per-port slices straight
    /// out of the graph's CSR block, and the reverse-port table was already
    /// computed by the graph in `O(n + m)`, so building the engine
    /// allocates `O(n)` — independent of the number of edges — and
    /// parallel rounds share one read-only adjacency image.
    pub fn build(
        graph: &'g Graph,
        config: SimConfig,
        mut factory: impl FnMut(&NodeInfo<'g>) -> P + 'g,
    ) -> Self {
        config.validate();
        // Monomorphization-time width check: building an engine for a
        // protocol whose `Msg` claims more than 64 packed bits is a
        // compile error, not a runtime truncation.
        #[allow(clippy::let_unit_value)]
        let () = <P::Msg as PackedMsg>::BITS_OK;
        let n = graph.num_nodes();
        let max_degree = graph.max_degree();
        let max_node_weight = graph.max_node_weight();
        let max_edge_weight = graph.max_edge_weight();
        let mut infos = Vec::with_capacity(n);
        for v in graph.nodes() {
            infos.push(NodeInfo {
                id: v,
                weight: graph.node_weight(v),
                neighbor_ids: graph.neighbor_ids(v),
                edge_weights: graph.port_edge_weights(v),
                n,
                max_degree,
                max_node_weight,
                max_edge_weight,
            });
        }
        let nodes = infos.iter().map(&mut factory).collect();
        Engine {
            graph,
            config,
            infos,
            nodes,
            factory: Box::new(factory),
        }
    }

    /// Retargets the engine onto a mutated topology between runs: `graph`
    /// is the compacted successor of the engine's current graph (same
    /// slot-id space — typically `DeltaGraph::compact` output, so slot
    /// ids are stable and `n` never shrinks), `deltas` the applied
    /// mutation log.
    ///
    /// Message planes and occupancy bitmaps are *not* carried over — the
    /// next `run` allocates them from the new graph's CSR shape, so they
    /// grow and shrink with the directed-edge count and removed rows
    /// simply cease to exist. Protocol instances of surviving nodes are
    /// kept (their per-node state is what incremental repair feeds on);
    /// nodes named in [`DeltaSet::joined`] or [`DeltaSet::left`] are
    /// re-instantiated factory-fresh, as are slots beyond the old `n`.
    ///
    /// # Panics
    /// Panics if `graph` has fewer slots than the current graph, or if a
    /// delta entry references a node outside `graph`.
    pub fn apply_deltas(self, graph: &'g Graph, deltas: &DeltaSet) -> Self {
        let old_n = self.graph.num_nodes();
        let n = graph.num_nodes();
        assert!(
            n >= old_n,
            "Engine::apply_deltas: graph must keep the slot-id space \
             ({n} slots < previous {old_n})"
        );
        for &v in deltas.joined.iter().chain(&deltas.left) {
            assert!(
                v.index() < n,
                "Engine::apply_deltas: delta node {v} out of range (slots 0..{n})"
            );
        }
        for &(u, v) in deltas.inserted.iter().chain(&deltas.removed) {
            assert!(
                u.index() < n && v.index() < n,
                "Engine::apply_deltas: delta edge {u}–{v} out of range (slots 0..{n})"
            );
        }
        self.config.validate();
        let max_degree = graph.max_degree();
        let max_node_weight = graph.max_node_weight();
        let max_edge_weight = graph.max_edge_weight();
        let mut infos = Vec::with_capacity(n);
        for v in graph.nodes() {
            infos.push(NodeInfo {
                id: v,
                weight: graph.node_weight(v),
                neighbor_ids: graph.neighbor_ids(v),
                edge_weights: graph.port_edge_weights(v),
                n,
                max_degree,
                max_node_weight,
                max_edge_weight,
            });
        }
        let mut reset = vec![false; n];
        for &v in deltas.joined.iter().chain(&deltas.left) {
            reset[v.index()] = true;
        }
        let mut factory = self.factory;
        let mut old_nodes = self.nodes.into_iter();
        let mut nodes = Vec::with_capacity(n);
        for (v, info) in infos.iter().enumerate() {
            let survivor = old_nodes.next();
            match survivor {
                Some(proto) if v < old_n && !reset[v] => nodes.push(proto),
                _ => nodes.push(factory(info)),
            }
        }
        Engine {
            graph,
            config: self.config,
            infos,
            nodes,
            factory,
        }
    }

    /// Runs the protocol to completion (all nodes halted) or to the round
    /// cap, using `seed` to derive every node's private RNG.
    pub fn run(self, seed: u64) -> RunOutcome<P::Output> {
        self.run_with(
            seed,
            true,
            |slots, round, planes| Self::step_all(slots, round, planes),
            |slots, planes, args| Self::deliver_all(slots, planes, args),
        )
    }

    /// Sequential compute phase over `slots`; shared by [`run`](Self::run)
    /// and `run_parallel`'s small-active-set inline fallback so the two
    /// cannot diverge.
    fn step_all(slots: &mut [NodeSlot<'g, P>], round: usize, planes: &Planes) {
        for slot in slots.iter_mut() {
            Self::step(slot, round, planes);
        }
    }

    /// Sequential delivery over `slots`; shared like
    /// [`step_all`](Self::step_all).
    fn deliver_all(slots: &[NodeSlot<'g, P>], planes: &Planes, args: &DeliverArgs<'_>) -> Tally {
        let mut tally = Tally::default();
        for slot in slots.iter() {
            Self::deliver_slot(slot, planes, args, &mut tally);
        }
        tally
    }

    /// Like [`run`](Engine::run), but executes each round's compute *and*
    /// delivery phases on all hardware threads, chunking over the
    /// compacted active slot prefix (halted nodes cost nothing).
    ///
    /// Outputs, statistics, and traces are bit-identical to the
    /// sequential path for the same `seed`: every node steps against its
    /// own private [`SmallRng`] and disjoint plane rows (no cross-node
    /// state), delivery writes each directed edge's unique cell, and the
    /// statistics merge with commutative sums/max. Rounds whose active set
    /// is smaller than a fixed threshold (or the whole run, on a
    /// single-threaded host) execute inline, so the parallel executor
    /// degrades to the sequential one instead of paying worker overhead it
    /// cannot recoup.
    pub fn run_parallel(self, seed: u64) -> RunOutcome<P::Output>
    where
        P: Send,
        P::Output: Send,
    {
        let threads = rayon::current_num_threads().max(1);
        self.run_parallel_with(seed, threads)
    }

    /// [`run_parallel`](Self::run_parallel) with an explicit worker count
    /// instead of the host's hardware parallelism — the bench harness
    /// sweeps this to record a `threads` column, and tests use it to
    /// exercise the multi-worker path on single-core hosts. Results are
    /// bit-identical to [`run`](Self::run) for any `threads`.
    pub fn run_parallel_with(self, seed: u64, threads: usize) -> RunOutcome<P::Output>
    where
        P: Send,
        P::Output: Send,
    {
        let threads = threads.max(1);
        if threads == 1 {
            // One worker: the parallel executor cannot win, so take the
            // sequential loop wholesale (identical code path, identical
            // results, zero overhead).
            return self.run(seed);
        }
        let inline_below = threads.saturating_mul(PAR_MIN_SLOTS_PER_WORKER);
        self.run_with(
            seed,
            true,
            move |slots, round, planes| {
                if slots.len() < inline_below {
                    Self::step_all(slots, round, planes);
                    return;
                }
                let chunk = slots.len().div_ceil(threads).max(1);
                slots
                    .par_chunks_mut(chunk)
                    .for_each_with_workers(threads, |chunk| {
                        Self::step_all(chunk, round, planes);
                    });
            },
            move |slots, planes, args| {
                if slots.len() < inline_below {
                    return Self::deliver_all(slots, planes, args);
                }
                let total_messages = AtomicU64::new(0);
                let max_message_bits = AtomicUsize::new(0);
                let budget_violations = AtomicU64::new(0);
                let dropped_messages = AtomicU64::new(0);
                let adversary_dropped = AtomicU64::new(0);
                let delayed_messages = AtomicU64::new(0);
                let duplicated_messages = AtomicU64::new(0);
                let corrupted_messages = AtomicU64::new(0);
                let chunk = slots.len().div_ceil(threads).max(1);
                slots
                    .par_chunks_mut(chunk)
                    .for_each_with_workers(threads, |chunk| {
                        let tally = Self::deliver_all(chunk, planes, args);
                        // One commutative flush per chunk; sums and max cannot
                        // observe merge order, so stats stay bit-identical to
                        // the sequential path.
                        total_messages.fetch_add(tally.total_messages, Ordering::Relaxed);
                        max_message_bits.fetch_max(tally.max_message_bits, Ordering::Relaxed);
                        budget_violations.fetch_add(tally.budget_violations, Ordering::Relaxed);
                        dropped_messages.fetch_add(tally.dropped_messages, Ordering::Relaxed);
                        adversary_dropped
                            .fetch_add(tally.adversary_dropped_messages, Ordering::Relaxed);
                        delayed_messages.fetch_add(tally.delayed_messages, Ordering::Relaxed);
                        duplicated_messages.fetch_add(tally.duplicated_messages, Ordering::Relaxed);
                        corrupted_messages.fetch_add(tally.corrupted_messages, Ordering::Relaxed);
                    });
                Tally {
                    total_messages: total_messages.into_inner(),
                    max_message_bits: max_message_bits.into_inner(),
                    budget_violations: budget_violations.into_inner(),
                    dropped_messages: dropped_messages.into_inner(),
                    adversary_dropped_messages: adversary_dropped.into_inner(),
                    delayed_messages: delayed_messages.into_inner(),
                    duplicated_messages: duplicated_messages.into_inner(),
                    corrupted_messages: corrupted_messages.into_inner(),
                }
            },
        )
    }

    /// Shard-partitioned executor for the matching-as-a-service façade:
    /// each shard's contiguous slot range is stepped and delivered by its
    /// own worker thread, and every message crossing a shard boundary is
    /// metered as coordinator↔worker traffic (the Huang–Radunovic–
    /// Vojnovic–Zhang communication model: cross-shard edges *are* the
    /// cost surface, carried here as the same packed-u64 plane rows as
    /// intra-shard ones).
    ///
    /// Outputs, statistics, and completion are **bit-identical to
    /// [`run`](Self::run)** for the same `(graph, config, seed)`, for any
    /// partition: nodes step against private RNGs and disjoint plane
    /// rows, delivery writes each directed edge's unique cell, and
    /// tallies merge commutatively — the run ≡ run_parallel contract
    /// extended with a third executor. Compaction is disabled so slot
    /// index == node id for the whole run, keeping partition ranges
    /// aligned with slot chunks; the cross-shard meter is kept out of
    /// [`RunStats`] so stats equality across executors stays exact.
    ///
    /// # Panics
    /// Panics if `partition` does not cover exactly the graph's slots.
    pub fn run_sharded(self, seed: u64, partition: &ShardPartition) -> ShardedRun<P::Output>
    where
        P: Send,
        P::Output: Send,
    {
        assert_eq!(
            partition.num_slots(),
            self.graph.num_nodes(),
            "Engine::run_sharded: partition covers {} slots, graph has {}",
            partition.num_slots(),
            self.graph.num_nodes()
        );
        let shards = partition.shards();
        let cross_shard_edges = partition.cross_shard_edges(self.graph);
        if shards == 1 {
            // One shard is the sequential engine; nothing crosses.
            return ShardedRun {
                outcome: self.run(seed),
                shards: 1,
                cross_shard_edges: 0,
                cross_shard_messages: 0,
            };
        }
        let cross_messages = AtomicU64::new(0);
        let outcome = self.run_with(
            seed,
            false,
            |slots, round, planes| {
                // Compaction is off: `slots` is the full table and slot
                // index == node id, so splitting at partition boundaries
                // hands each worker exactly its shard's nodes.
                std::thread::scope(|scope| {
                    let mut rest = slots;
                    let mut offset = 0;
                    for s in 0..shards {
                        let end = partition.range(s).end;
                        let (chunk, tail) = rest.split_at_mut(end - offset);
                        offset = end;
                        rest = tail;
                        if !chunk.is_empty() {
                            scope.spawn(move || Self::step_all(chunk, round, planes));
                        }
                    }
                });
            },
            |slots, planes, args| {
                let mut tallies: Vec<(Tally, u64)> = Vec::with_capacity(shards);
                std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(shards);
                    // `&mut` chunks (like `par_chunks_mut` in the parallel
                    // executor) so only `P: Send` is required of protocols.
                    let mut rest = slots;
                    let mut offset = 0;
                    for s in 0..shards {
                        let end = partition.range(s).end;
                        let (chunk, tail) = rest.split_at_mut(end - offset);
                        offset = end;
                        rest = tail;
                        handles.push(scope.spawn(move || {
                            let mut tally = Tally::default();
                            let mut cross = 0u64;
                            for slot in chunk.iter() {
                                Self::deliver_slot_with(slot, planes, args, &mut tally, {
                                    let cross = &mut cross;
                                    move |_from, to, _bits| {
                                        // The whole chunk belongs to shard
                                        // `s`, so only the receiver's side
                                        // needs a lookup.
                                        if partition.shard_of(to) != s {
                                            *cross += 1;
                                        }
                                    }
                                });
                            }
                            (tally, cross)
                        }));
                    }
                    for h in handles {
                        tallies.push(h.join().expect("shard delivery worker panicked"));
                    }
                });
                // Merge in shard order — sums and max are commutative, so
                // the totals are bit-identical to the sequential tally.
                let mut merged = Tally::default();
                for (t, cross) in tallies {
                    merged.total_messages += t.total_messages;
                    merged.max_message_bits = merged.max_message_bits.max(t.max_message_bits);
                    merged.budget_violations += t.budget_violations;
                    merged.dropped_messages += t.dropped_messages;
                    merged.adversary_dropped_messages += t.adversary_dropped_messages;
                    merged.delayed_messages += t.delayed_messages;
                    merged.duplicated_messages += t.duplicated_messages;
                    merged.corrupted_messages += t.corrupted_messages;
                    cross_messages.fetch_add(cross, Ordering::Relaxed);
                }
                merged
            },
        );
        ShardedRun {
            outcome,
            shards,
            cross_shard_edges,
            cross_shard_messages: cross_messages.into_inner(),
        }
    }

    /// Shared run loop; `compute` executes one round's compute phase over
    /// the active slots (round 0 is `init`), `deliver` scatters their
    /// send-plane rows (untraced runs only — tracing uses the sequential
    /// ascending-id path so trace order is reproducible).
    ///
    /// `allow_compact` lets the caller veto active-prefix compaction even
    /// when tracing/restart/churn would permit it: the sharded executor
    /// needs slot index == node id for the whole run so partition ranges
    /// stay aligned with slot chunks.
    fn run_with(
        self,
        seed: u64,
        allow_compact: bool,
        compute: impl Fn(&mut [NodeSlot<'g, P>], usize, &Planes),
        deliver: impl Fn(&mut [NodeSlot<'g, P>], &Planes, &DeliverArgs<'_>) -> Tally,
    ) -> RunOutcome<P::Output> {
        let n = self.graph.num_nodes();
        let graph = self.graph;
        let config = self.config;
        let mut factory = self.factory;
        let row_offsets = graph.row_offsets();
        // Per-node occupancy rows, word-aligned: node `v`'s bits live in
        // words `occ_offsets[v] .. occ_offsets[v + 1]` (one word per 64
        // ports, rounded up), so no two nodes ever share an occupancy word
        // and the compute phase can hold plain `&mut` rows.
        let mut occ_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        let mut occ_acc: u32 = 0;
        occ_offsets.push(0);
        for v in 0..n {
            let degree = (row_offsets[v + 1] - row_offsets[v]) as usize;
            occ_acc += degree.div_ceil(64) as u32;
            occ_offsets.push(occ_acc);
        }
        let mut slots: Vec<NodeSlot<'g, P>> = self
            .nodes
            .into_iter()
            .zip(self.infos)
            .map(|(proto, info)| NodeSlot {
                rng: node_rng(seed, info.id),
                proto,
                reverse_port: graph.reverse_ports(info.id),
                neighbor_edges: graph.neighbor_edges(info.id),
                row_start: row_offsets[info.id.index()],
                occ_start: occ_offsets[info.id.index()],
                info,
                pending_halt: None,
                active: true,
                needs_init: false,
            })
            .collect();
        // Fault machinery, pre-filtered so the fault-free loop tests one
        // `Option` discriminant per hook and allocates nothing extra: a
        // zero-delay scheduler and an all-zero adversary take exactly the
        // fingerprinted synchronous path.
        let adversary = config.adversary.filter(Adversary::is_active);
        let scheduler = config.scheduler.filter(|s| s.max_delay() > 0);
        let dup_on = adversary.is_some_and(|a| a.dup_prob > 0.0);
        let restart_after = adversary
            .filter(|a| a.crash_prob > 0.0)
            .and_then(|a| a.restart_after);
        // Topology churn: a link-state bitmap over undirected edge ids
        // (flips toggle bits; delivery consults it per message) and a
        // departed set for node leaves/joins. All allocated only when the
        // corresponding coin can fire, so the static path stays untouched.
        let churn = adversary.filter(Adversary::has_churn);
        let flips_on = churn.is_some_and(|a| a.edge_flip_prob > 0.0);
        let joins_on = churn.is_some_and(|a| a.node_join_prob > 0.0);
        let leaves_on = churn.is_some_and(|a| a.node_leave_prob > 0.0);
        let mut edge_down: Vec<u64> = if flips_on {
            vec![0u64; graph.num_edges().div_ceil(64)]
        } else {
            Vec::new()
        };
        let mut departed: Vec<bool> = if leaves_on {
            vec![false; n]
        } else {
            Vec::new()
        };
        let mut departed_count: usize = 0;
        // The send plane and the receive-plane ring: every buffer of the
        // round loop is allocated here, once; rounds only move messages
        // through them. Ring sizing: arrivals span `round + 1` through
        // `round + 1 + max_delay` (+1 more for duplicate copies, which
        // trail their originals by a round).
        let ring_len = scheduler.map_or(0, |s| s.max_delay()) + 1 + usize::from(dup_on);
        let plane_len = row_offsets[n] as usize;
        let occ_len = occ_acc as usize;
        // Dense word storage: 8 payload bytes per directed edge plus one
        // amortized occupancy byte (see [`plane_bytes_for`]), zeroed in one
        // memset each — no per-cell `Option` initialization.
        let mut send_words = vec![0u64; plane_len];
        let mut send_occ = vec![0u64; occ_len];
        let mut recv_words: Vec<Vec<u64>> = (0..ring_len).map(|_| vec![0u64; plane_len]).collect();
        let mut recv_occ: Vec<Vec<u64>> = (0..ring_len).map(|_| vec![0u64; occ_len]).collect();
        let planes = Planes {
            send: PlanePtr::new(&mut send_words, &mut send_occ),
            recv: recv_words
                .iter_mut()
                .zip(recv_occ.iter_mut())
                .map(|(w, o)| PlanePtr::new(w, o))
                .collect(),
            reorder: adversary.filter(|a| a.reorder_prob > 0.0),
        };
        let mut outputs: Vec<Option<P::Output>> = vec![None; n];
        let mut alive = vec![true; n];
        let mut active_count = n;
        // Slots `0..active_len` are the (compacted) active prefix; tracing
        // disables compaction so delivery can walk ascending node ids,
        // and restart mode and node churn disable it so a rejoining node
        // can be found at slot index == node id.
        let compact =
            allow_compact && !config.record_traces && restart_after.is_none() && churn.is_none();
        let mut active_len = n;
        let mut stats = RunStats::default();
        let mut traces = Vec::new();
        // Crashed nodes awaiting their restart round, in due-round order
        // (crashes are discovered in ascending rounds, so plain FIFO
        // pushes keep the queue monotone).
        let mut restart_queue: VecDeque<(usize, u32)> = VecDeque::new();

        // Round 0: init (no inboxes yet, halting is not possible).
        compute(&mut slots[..active_len], 0, &planes);
        active_len = Self::delivery_phase(
            &config,
            &mut slots,
            active_len,
            compact,
            &planes,
            row_offsets,
            &occ_offsets,
            &mut alive,
            flips_on.then_some(&edge_down).map(Vec::as_slice),
            &mut outputs,
            &mut active_count,
            &mut stats,
            &mut traces,
            0,
            &deliver,
        );

        while (active_count > 0 || !restart_queue.is_empty() || (joins_on && departed_count > 0))
            && stats.rounds < config.max_rounds
        {
            stats.rounds += 1;
            let round = stats.rounds;
            // Self-stabilization: crashed nodes whose downtime has elapsed
            // rejoin *before* this round's crash coins, with factory-fresh
            // protocol state and a fresh RNG stream (keyed by the rejoin
            // round, so a node crashing twice gets two distinct streams).
            // Compaction is off in restart mode, so slot index == node id.
            while let Some(&(due, v)) = restart_queue.front() {
                if due > round {
                    break;
                }
                restart_queue.pop_front();
                let slot = &mut slots[v as usize];
                let info = slot.info;
                slot.proto = factory(&info);
                slot.rng = node_rng(
                    phase_seed(seed, RESTART_STREAM_SALT.wrapping_add(round as u64)),
                    info.id,
                );
                slot.pending_halt = None;
                slot.needs_init = true;
                slot.active = true;
                alive[v as usize] = true;
                active_count += 1;
                stats.restarted_nodes += 1;
            }
            // Crash adversary: decided before the compute phase, per node,
            // by a coin pure in (round, id) — so the schedule cannot
            // depend on slot order, compaction, or parallel chunking. A
            // crashed node is inert from this round on: it neither
            // computes nor sends, produces no output, and `alive` makes
            // delivery drop everything addressed to it — until its restart
            // round, if the adversary grants one. (Rounds ≥ 1 only: every
            // node is guaranteed its first `init`.)
            if let Some(adv) = adversary.filter(|a| a.crash_prob > 0.0) {
                for slot in slots[..active_len].iter_mut() {
                    if slot.active && adv.crashes(round, slot.info.id) {
                        slot.active = false;
                        alive[slot.info.id.index()] = false;
                        active_count -= 1;
                        stats.crashed_nodes += 1;
                        if let Some(k) = restart_after {
                            restart_queue.push_back((round + k, slot.info.id.0));
                            // Wipe the node's in-flight arrivals across the
                            // whole ring: a restarted node boots with an
                            // empty inbox, and pre-crash stragglers count
                            // as lost to the crash.
                            let occ_start = slot.occ_start as usize;
                            let occ_words = slot.info.degree().div_ceil(64);
                            for plane in &planes.recv {
                                // SAFETY: this is the sequential section of
                                // the round loop — no worker holds any
                                // plane reference — and each node's rows
                                // are disjoint from every other node's.
                                let occ = unsafe { plane.occ_row(occ_start, occ_words) };
                                for word in occ.iter_mut() {
                                    stats.dropped_messages += u64::from(word.count_ones());
                                    *word = 0;
                                }
                            }
                        }
                    }
                }
            }
            // Topology churn, in the same sequential section as crashes,
            // by coins pure in (round, id): joins first (mirroring
            // restarts: a node can rejoin before this round's leave coins
            // fire), then leaves, then edge flips. Compaction is off
            // whenever churn is on, so slot index == node id.
            if let Some(adv) = churn {
                if joins_on && departed_count > 0 {
                    for v in 0..n {
                        if !departed[v] || !adv.rejoins(round, NodeId(v as u32)) {
                            continue;
                        }
                        departed[v] = false;
                        departed_count -= 1;
                        let slot = &mut slots[v];
                        let info = slot.info;
                        slot.proto = factory(&info);
                        slot.rng = node_rng(
                            phase_seed(seed, CHURN_STREAM_SALT.wrapping_add(round as u64)),
                            info.id,
                        );
                        slot.pending_halt = None;
                        slot.needs_init = true;
                        slot.active = true;
                        alive[v] = true;
                        active_count += 1;
                        stats.nodes_joined += 1;
                    }
                }
                if leaves_on {
                    for slot in slots[..active_len].iter_mut() {
                        if !slot.active || !adv.leaves(round, slot.info.id) {
                            continue;
                        }
                        let v = slot.info.id.index();
                        slot.active = false;
                        alive[v] = false;
                        active_count -= 1;
                        departed[v] = true;
                        departed_count += 1;
                        stats.nodes_left += 1;
                        // Wipe the node's in-flight arrivals across the
                        // ring, as at a crash: a rejoining node boots
                        // with an empty inbox, and pre-departure
                        // stragglers count as lost to the churn.
                        let occ_start = slot.occ_start as usize;
                        let occ_words = slot.info.degree().div_ceil(64);
                        for plane in &planes.recv {
                            // SAFETY: sequential section of the round
                            // loop — no worker holds any plane reference
                            // — and each node's rows are disjoint from
                            // every other node's.
                            let occ = unsafe { plane.occ_row(occ_start, occ_words) };
                            for word in occ.iter_mut() {
                                stats.dropped_messages += u64::from(word.count_ones());
                                *word = 0;
                            }
                        }
                    }
                }
                if flips_on {
                    // O(m) coin scan; each toggle moves the undirected
                    // edge between up and down, and both directed views
                    // share the bit.
                    for e in graph.edges() {
                        let (u, v) = graph.endpoints(e);
                        if adv.flips_edge(round, u, v) {
                            edge_down[e.index() / 64] ^= 1 << (e.index() % 64);
                            stats.edges_flipped += 1;
                        }
                    }
                }
            }
            compute(&mut slots[..active_len], round, &planes);
            active_len = Self::delivery_phase(
                &config,
                &mut slots,
                active_len,
                compact,
                &planes,
                row_offsets,
                &occ_offsets,
                &mut alive,
                flips_on.then_some(&edge_down).map(Vec::as_slice),
                &mut outputs,
                &mut active_count,
                &mut stats,
                &mut traces,
                round,
                &deliver,
            );
        }

        RunOutcome {
            // Complete ⇔ every node halted with an output. (Equivalent to
            // the historical `active_count == 0 && crashed_nodes == 0` in
            // crash-stop mode — only halting clears `active` with an
            // output — but also correct in restart mode, where a crashed
            // node can rejoin and still halt.)
            completed: outputs.iter().all(Option::is_some),
            outputs,
            stats,
            traces,
        }
    }

    /// Compute phase for one node: run `init` (round 0) or `round` against
    /// the node's receive-plane row, writing sends into its send-plane row,
    /// and stash any halt decision in [`NodeSlot::pending_halt`]. The
    /// receive row is cleared afterwards, ready for next round's delivery.
    /// Touches nothing outside the slot and its two plane rows.
    fn step(slot: &mut NodeSlot<'g, P>, round: usize, planes: &Planes) {
        if !slot.active {
            return;
        }
        let start = slot.row_start as usize;
        let occ_start = slot.occ_start as usize;
        let degree = slot.info.degree();
        let occ_words = degree.div_ceil(64);
        // SAFETY: each node id occurs in exactly one slot and CSR rows of
        // distinct nodes are disjoint (occupancy rows are word-aligned per
        // node), so these are the only live references to the rows (the
        // compute phase hands each slot to exactly one worker, and no
        // delivery runs concurrently).
        let send_words = unsafe { planes.send.words_row(start, degree) };
        // SAFETY: same row disjointness, on the word-aligned occupancy row.
        let send_occ = unsafe { planes.send.occ_row(occ_start, occ_words) };
        let recv_plane = planes.recv_for(round);
        // SAFETY: same row-disjointness argument, on this round's receive
        // plane (ring position `round % len`; delivery never writes the
        // current round's plane, only future arrivals).
        let recv_words = unsafe { recv_plane.words_row(start, degree) };
        // SAFETY: as above, on the receive plane's occupancy row.
        let recv_occ = unsafe { recv_plane.occ_row(occ_start, occ_words) };
        let NodeSlot {
            proto,
            info,
            rng,
            pending_halt,
            needs_init,
            ..
        } = slot;
        let mut ctx = Context {
            info,
            rng,
            round,
            out_words: send_words,
            out_occ: send_occ,
            _msg: std::marker::PhantomData,
        };
        if round == 0 || *needs_init {
            // Round 0, or the node is rejoining after a crash (restart
            // mode): boot with reset state. Stragglers were wiped at crash
            // time, so the inbox below is empty either way.
            *needs_init = false;
            proto.init(&mut ctx);
        } else {
            if let Some(adv) = &planes.reorder {
                if degree > 1 && adv.reorders_inbox(round, info.id) {
                    // In-place Fisher–Yates over the port-indexed row,
                    // keyed purely by (round, node, step): messages
                    // surface out of port order, misattributed to the
                    // wrong neighbors — and identically so under any
                    // execution order, since the row is exclusively ours.
                    // Payload word and occupancy bit travel together, so a
                    // silent port stays silent wherever it lands.
                    for i in (1..degree).rev() {
                        let j = (adv.shuffle_coin(round, info.id, i) % (i as u64 + 1)) as usize;
                        recv_words.swap(i, j);
                        let bi = recv_occ[i / 64] >> (i % 64) & 1;
                        let bj = recv_occ[j / 64] >> (j % 64) & 1;
                        if bi != bj {
                            recv_occ[i / 64] ^= 1 << (i % 64);
                            recv_occ[j / 64] ^= 1 << (j % 64);
                        }
                    }
                }
            }
            let inbox = Inbox::new(recv_words, recv_occ);
            if let Status::Halt(out) = proto.round(&mut ctx, inbox) {
                *pending_halt = Some(out);
            }
        }
        // Consume this round's inbox so the plane's next turn in the ring
        // starts from an empty row: clearing the occupancy words *is* the
        // drain — stale payload words are unreachable without their bits.
        for word in recv_occ.iter_mut() {
            *word = 0;
        }
    }

    /// Delivery for one sender: drain its send-plane row, scattering each
    /// message into the receiver's receive-plane cell (or counting a drop)
    /// and accumulating statistics into `tally`. `on_message` runs once per
    /// message before the drop decision — the trace hook; the untraced
    /// paths pass a no-op closure that monomorphizes away.
    #[inline]
    fn deliver_slot_with(
        slot: &NodeSlot<'g, P>,
        planes: &Planes,
        args: &DeliverArgs<'_>,
        tally: &mut Tally,
        mut on_message: impl FnMut(NodeId, NodeId, usize),
    ) {
        let start = slot.row_start as usize;
        let occ_start = slot.occ_start as usize;
        let degree = slot.info.degree();
        let occ_words = degree.div_ceil(64);
        // SAFETY: row disjointness, as in `step` — each sender slot is
        // drained by exactly one worker, and delivery only *reads* other
        // nodes' payload rows through unique directed-edge cells.
        let send_words = unsafe { planes.send.words_row(start, degree) };
        // SAFETY: same row disjointness, on the word-aligned occupancy row.
        let send_occ = unsafe { planes.send.occ_row(occ_start, occ_words) };
        for (w, occ_word) in send_occ.iter_mut().enumerate() {
            let mut pending = *occ_word;
            // Draining the send row is one store per occupancy word; a
            // round where this node stayed silent scans `degree / 64`
            // zero words and touches no payload.
            *occ_word = 0;
            while pending != 0 {
                let port = w * 64 + pending.trailing_zeros() as usize;
                pending &= pending - 1;
                let mut word = send_words[port];
                // Unpacking costs a few shifts and is needed anyway: the
                // budget meter charges the message's *information* bits
                // (`bit_size`), not its 64-bit frame.
                let msg = <P::Msg as PackedMsg>::unpack(word);
                let bits = msg.bit_size();
                tally.total_messages += 1;
                tally.max_message_bits = tally.max_message_bits.max(bits);
                if let Some(budget) = args.bit_budget {
                    if bits > budget {
                        tally.budget_violations += 1;
                    }
                }
                let to = slot.info.neighbor_ids[port];
                on_message(slot.info.id, to, bits);
                if let Some(down) = args.edge_down {
                    // Churn link state: a down edge eats the message
                    // before receiver liveness is even observable. The
                    // bit is keyed by undirected edge id, so both
                    // directions fail together.
                    let e = slot.neighbor_edges[port].index();
                    if down[e / 64] >> (e % 64) & 1 == 1 {
                        tally.adversary_dropped_messages += 1;
                        continue;
                    }
                }
                if !args.alive[to.index()] {
                    tally.dropped_messages += 1;
                    continue;
                }
                if let Some(adv) = args.adversary {
                    if adv.drops_message(args.round, slot.info.id, to) {
                        // Lost in flight: the receiver is alive but never
                        // sees it. Every coin here is pure in (round,
                        // from, to), so the schedule is identical under
                        // any delivery order or chunking.
                        tally.adversary_dropped_messages += 1;
                        continue;
                    }
                    if adv.corrupts_message(args.round, slot.info.id, to) {
                        tally.corrupted_messages += 1;
                        // The payload type decides whether corruption
                        // surfaces as a mutated value or as a checksum
                        // discard; the budget metered what the sender
                        // transmitted, before the garbling. Garbling
                        // happens on the *unpacked* message — bit-flip
                        // semantics are the type's, not the frame's — and
                        // the survivor is repacked for the wire.
                        let entropy = adv.corruption_entropy(args.round, slot.info.id, to);
                        match msg.corrupted(entropy) {
                            Some(garbled) => word = garbled.pack(),
                            None => continue,
                        }
                    }
                }
                // Synchronous arrival is the next round; an async
                // scheduler adds a pure per-edge delay on top.
                let delay = match args.scheduler {
                    Some(sched) => {
                        let d = sched.delay(args.round, slot.info.id, to);
                        if d > 0 {
                            tally.delayed_messages += 1;
                        }
                        d
                    }
                    None => 0,
                };
                let rev = slot.reverse_port[port] as usize;
                let cell_idx = args.row_offsets[to.index()] as usize + rev;
                let occ_idx = args.occ_offsets[to.index()] as usize + rev / 64;
                let occ_mask = 1u64 << (rev % 64);
                if args
                    .adversary
                    .is_some_and(|adv| adv.duplicates_message(args.round, slot.info.id, to))
                {
                    // The duplicate trails the original by exactly one
                    // round: a distinct ring plane (the ring is one plane
                    // longer when duplication is on), so each (plane,
                    // cell) pair is still written by at most one sender
                    // within this phase. Duplication is free on words —
                    // the same packed frame is scattered twice.
                    tally.duplicated_messages += 1;
                    Self::place_word(
                        planes,
                        args.round + 2 + delay,
                        cell_idx,
                        occ_idx,
                        occ_mask,
                        word,
                        tally,
                    );
                }
                Self::place_word(
                    planes,
                    args.round + 1 + delay,
                    cell_idx,
                    occ_idx,
                    occ_mask,
                    word,
                    tally,
                );
            }
        }
    }

    /// Writes one packed message word into the receive-plane ring at its
    /// arrival round's cell for the directed edge `cell_idx`, setting the
    /// receiver's occupancy bit, and counting a collision — two in-flight
    /// messages of one directed edge converging on the same arrival round,
    /// where the later-sent one wins — as a lost message. Collisions
    /// cannot occur in synchronous (zero-delay) mode: every edge delivers
    /// at most one message per phase and the receiver drains its row each
    /// round.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn place_word(
        planes: &Planes,
        arrival_round: usize,
        cell_idx: usize,
        occ_idx: usize,
        occ_mask: u64,
        word: u64,
        tally: &mut Tally,
    ) {
        let plane = planes.recv_for(arrival_round);
        // SAFETY: `cell_idx` addresses the payload cell of one directed
        // edge (sender → to); reverse ports are a bijection on directed
        // edges, so within this delivery phase no other sender (on any
        // thread) writes any plane's copy of this cell — and the original
        // and duplicate of this edge target planes of *different* arrival
        // rounds. Nothing reads the receive planes during delivery. A
        // previous phase's occupant (a slower message from an earlier
        // round) is only ever overwritten here, by the one worker that
        // owns the edge this phase.
        unsafe { plane.write_word(cell_idx, word) };
        // SAFETY: the occupancy *word* is shared — it covers up to 64
        // ports of the receiver, each fed by a different sender — so the
        // bit set must be the atomic RMW (no `&mut` to any occupancy word
        // exists during delivery). The returned prior word detects the
        // collision the `Option::replace` used to: our *bit* already set
        // means an earlier phase parked a message on this edge for the
        // same arrival round.
        let prior = unsafe { plane.occ_fetch_or(occ_idx, occ_mask) };
        if prior & occ_mask != 0 {
            tally.dropped_messages += 1;
        }
    }

    /// Untraced delivery for one sender (see
    /// [`deliver_slot_with`](Self::deliver_slot_with)).
    #[inline]
    fn deliver_slot(
        slot: &NodeSlot<'g, P>,
        planes: &Planes,
        args: &DeliverArgs<'_>,
        tally: &mut Tally,
    ) {
        Self::deliver_slot_with(slot, planes, args, tally, |_, _, _| {});
    }

    /// Delivery phase: apply this round's halts, scatter every send-plane
    /// row into the receive plane (via `deliver`, or the sequential traced
    /// path), then swap halted slots out of the active prefix. Runs after
    /// *all* nodes computed, so whether a message is dropped depends only
    /// on the set of halted nodes — never on node processing order.
    /// Returns the new active prefix length.
    #[allow(clippy::too_many_arguments)]
    fn delivery_phase(
        config: &SimConfig,
        slots: &mut [NodeSlot<'g, P>],
        active_len: usize,
        compact: bool,
        planes: &Planes,
        row_offsets: &[u32],
        occ_offsets: &[u32],
        alive: &mut [bool],
        edge_down: Option<&[u64]>,
        outputs: &mut [Option<P::Output>],
        active_count: &mut usize,
        stats: &mut RunStats,
        traces: &mut Vec<MessageTrace>,
        round: usize,
        deliver: &impl Fn(&mut [NodeSlot<'g, P>], &Planes, &DeliverArgs<'_>) -> Tally,
    ) -> usize {
        for slot in slots[..active_len].iter_mut() {
            if let Some(out) = slot.pending_halt.take() {
                debug_assert!(slot.active, "inactive nodes are never stepped");
                let v = slot.info.id.index();
                outputs[v] = Some(out);
                alive[v] = false;
                slot.active = false;
                *active_count -= 1;
            }
        }
        let args = DeliverArgs {
            row_offsets,
            occ_offsets,
            alive,
            bit_budget: config.bit_budget,
            round,
            adversary: config.adversary.filter(Adversary::affects_delivery),
            scheduler: config.scheduler.filter(|s| s.max_delay() > 0),
            edge_down,
        };
        let tally = if config.record_traces {
            // Tracing pins delivery to ascending node-id order (compaction
            // is off, so slot order is id order) and stays sequential —
            // the documented small-graph path.
            let mut tally = Tally::default();
            for slot in slots.iter() {
                Self::deliver_slot_traced(slot, planes, &args, &mut tally, traces, round);
            }
            tally
        } else {
            deliver(&mut slots[..active_len], planes, &args)
        };
        stats.total_messages += tally.total_messages;
        stats.max_message_bits = stats.max_message_bits.max(tally.max_message_bits);
        stats.budget_violations += tally.budget_violations;
        stats.dropped_messages += tally.dropped_messages;
        stats.adversary_dropped_messages += tally.adversary_dropped_messages;
        stats.delayed_messages += tally.delayed_messages;
        stats.duplicated_messages += tally.duplicated_messages;
        stats.corrupted_messages += tally.corrupted_messages;
        if !compact {
            return active_len;
        }
        // Swap this round's halted slots out of the active prefix so
        // future compute/delivery phases never revisit them.
        let mut i = 0;
        let mut len = active_len;
        while i < len {
            if slots[i].active {
                i += 1;
            } else {
                len -= 1;
                slots.swap(i, len);
            }
        }
        len
    }

    /// [`deliver_slot`](Self::deliver_slot) plus trace recording.
    fn deliver_slot_traced(
        slot: &NodeSlot<'g, P>,
        planes: &Planes,
        args: &DeliverArgs<'_>,
        tally: &mut Tally,
        traces: &mut Vec<MessageTrace>,
        round: usize,
    ) {
        Self::deliver_slot_with(slot, planes, args, tally, |from, to, bits| {
            traces.push(MessageTrace {
                round,
                from,
                to,
                bits,
            });
        });
    }
}

/// Convenience wrapper: build and run in one call.
///
/// ```
/// use congest_graph::generators;
/// use congest_sim::{run_protocol, Context, Inbox, Protocol, SimConfig, Status};
///
/// struct Degree;
/// impl Protocol for Degree {
///     type Msg = ();
///     type Output = usize;
///     fn init(&mut self, _ctx: &mut Context<'_, ()>) {}
///     fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: Inbox<'_, ()>)
///         -> Status<usize>
///     {
///         Status::Halt(ctx.degree())
///     }
/// }
///
/// let g = generators::star(5);
/// let outcome = run_protocol(&g, SimConfig::local(), |_| Degree, 1);
/// assert_eq!(outcome.outputs[0], Some(4));
/// ```
pub fn run_protocol<'g, P: Protocol>(
    graph: &'g Graph,
    config: SimConfig,
    factory: impl FnMut(&NodeInfo<'g>) -> P + 'g,
    seed: u64,
) -> RunOutcome<P::Output> {
    Engine::build(graph, config, factory).run(seed)
}

/// Estimated bytes the engine's message planes occupy for a run over a
/// (roughly degree-homogeneous) graph of `n` nodes and `directed_edges`
/// directed edges (= `2m`), with a receive ring of `ring_len` planes
/// (synchronous runs: 1; an [`AsyncScheduler`] with max delay `d` plus the
/// duplication adversary: `d + 2`).
///
/// Each plane stores 8 payload bytes per directed edge plus one occupancy
/// word per node per 64 ports — at the bench matrix's average degree 8
/// that is exactly 1 amortized bitmap byte per directed edge, 9 total
/// (the bound [`plane_bytes_for`]'s unit test pins). Message size does
/// not appear: the plane word is 64 bits no matter what the protocol
/// packs into it, which is the point of the packed representation —
/// `plane_bytes(10^7, 8·10^7, 1)` ≈ 1.4 GB regardless of `Msg`.
pub fn plane_bytes(n: usize, directed_edges: usize, ring_len: usize) -> usize {
    let avg_degree = if n == 0 {
        0
    } else {
        directed_edges.div_ceil(n)
    };
    let occ_words = n * avg_degree.div_ceil(64).max(1);
    (1 + ring_len) * (directed_edges + occ_words) * 8
}

/// Exact plane bytes for `graph` (per-node `⌈degree / 64⌉` occupancy
/// accounting instead of [`plane_bytes`]'s homogeneous estimate), for a
/// receive ring of `ring_len` planes. This is what `bench_baseline`
/// records per trajectory entry.
pub fn plane_bytes_for(graph: &Graph, ring_len: usize) -> usize {
    let n = graph.num_nodes();
    let payload_words = graph.row_offsets()[n] as usize;
    let occ_words: usize = graph
        .nodes()
        .map(|v| graph.neighbor_ids(v).len().div_ceil(64))
        .sum();
    (1 + ring_len) * (payload_words + occ_words) * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Each node halts immediately, outputting its degree.
    struct InstantHalt;
    impl Protocol for InstantHalt {
        type Msg = ();
        type Output = usize;
        fn init(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: Inbox<'_, ()>) -> Status<usize> {
            Status::Halt(ctx.degree())
        }
    }

    /// Echoes its id to all neighbors each round; halts after collecting
    /// all neighbor ids (which takes exactly one exchange).
    struct Census {
        heard: Vec<NodeId>,
    }
    impl Protocol for Census {
        type Msg = u32;
        type Output = Vec<NodeId>;
        fn init(&mut self, ctx: &mut Context<'_, u32>) {
            let id = ctx.id().0;
            ctx.broadcast(id);
        }
        fn round(
            &mut self,
            _ctx: &mut Context<'_, u32>,
            inbox: Inbox<'_, u32>,
        ) -> Status<Vec<NodeId>> {
            for (_, id) in inbox {
                self.heard.push(NodeId(id));
            }
            self.heard.sort_unstable();
            Status::Halt(self.heard.clone())
        }
    }

    #[test]
    fn instant_halt_runs_one_round() {
        let g = generators::cycle(5);
        let outcome = run_protocol(&g, SimConfig::local(), |_| InstantHalt, 0);
        assert!(outcome.completed);
        assert_eq!(outcome.stats.rounds, 1);
        assert_eq!(outcome.stats.total_messages, 0);
        assert!(outcome.outputs.iter().all(|o| *o == Some(2)));
    }

    #[test]
    fn census_learns_neighbor_ids() {
        let g = generators::star(4);
        let outcome = run_protocol(
            &g,
            SimConfig::congest_for(&g),
            |_| Census { heard: Vec::new() },
            7,
        );
        assert!(outcome.completed);
        let outputs = outcome.outputs;
        assert_eq!(
            outputs[0].as_ref().unwrap(),
            &vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        for leaf in outputs.iter().skip(1) {
            assert_eq!(leaf.as_ref().unwrap(), &vec![NodeId(0)]);
        }
    }

    #[test]
    fn message_stats_counted() {
        let g = generators::complete(4);
        let outcome = run_protocol(
            &g,
            SimConfig::congest_for(&g),
            |_| Census { heard: Vec::new() },
            7,
        );
        // Every node broadcasts once at init: 4 nodes × 3 ports.
        assert_eq!(outcome.stats.total_messages, 12);
        assert_eq!(outcome.stats.budget_violations, 0);
        assert!(outcome.stats.max_message_bits >= 1);
    }

    /// Multi-round randomized walk: every round each node adds a private
    /// coin to a running sum, broadcasts it, and halts once the sum
    /// crosses a threshold — so outputs depend on per-node RNG streams,
    /// inbox contents, *and* halt timing, exactly the surface where a
    /// misaligned executor would diverge.
    struct CoinWalk {
        sum: u64,
        heard: u64,
    }
    impl Protocol for CoinWalk {
        type Msg = u32;
        type Output = (usize, u64);
        fn init(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.broadcast(0);
        }
        fn round(
            &mut self,
            ctx: &mut Context<'_, u32>,
            inbox: Inbox<'_, u32>,
        ) -> Status<(usize, u64)> {
            for (_, x) in inbox {
                self.heard = self.heard.wrapping_mul(31).wrapping_add(u64::from(x));
            }
            self.sum += ctx.rng().random_range(0..7u64);
            if self.sum >= 12 {
                return Status::Halt((ctx.round(), self.heard));
            }
            ctx.broadcast((self.sum & 0xffff) as u32);
            Status::Active
        }
    }

    #[test]
    fn sharded_executor_is_bit_identical_to_sequential() {
        use congest_graph::ShardPartition;
        let mut rng = SmallRng::seed_from_u64(9);
        for trial in 0..3u64 {
            let g = generators::gnp(60, 0.08, &mut rng);
            let cfg = SimConfig::congest_for(&g).with_max_rounds(400);
            let base =
                Engine::build(&g, cfg.clone(), |_| CoinWalk { sum: 0, heard: 0 }).run(31 + trial);
            assert!(base.completed, "trial {trial}");
            for shards in [1usize, 2, 3, 7] {
                let p = ShardPartition::contiguous(g.num_nodes(), shards);
                let run = Engine::build(&g, cfg.clone(), |_| CoinWalk { sum: 0, heard: 0 })
                    .run_sharded(31 + trial, &p);
                assert_eq!(run.outcome.completed, base.completed, "trial {trial}");
                assert_eq!(run.outcome.outputs, base.outputs, "trial {trial}/{shards}");
                assert_eq!(run.outcome.stats, base.stats, "trial {trial}/{shards}");
                assert_eq!(run.shards, shards);
                assert_eq!(run.cross_shard_edges, p.cross_shard_edges(&g));
                if shards == 1 {
                    assert_eq!(run.cross_shard_messages, 0);
                }
            }
        }
    }

    #[test]
    fn churn_saturation_departs_every_node_gracefully() {
        // node_leave_prob = 1.0: every node departs in round 1, leaving
        // zero live nodes. The loop must terminate immediately (no
        // empty-graph spin to the round cap) with the departure counted.
        let mut rng = SmallRng::seed_from_u64(44);
        let g = generators::gnp(30, 0.2, &mut rng);
        let adv = Adversary::default().with_seed(99).with_node_leave_prob(1.0);
        let cfg = SimConfig::congest_for(&g).with_adversary(adv);
        let outcome = Engine::build(&g, cfg, |_| Census { heard: Vec::new() }).run(5);
        assert!(!outcome.completed, "departed nodes never produce outputs");
        assert_eq!(outcome.stats.nodes_left as usize, g.num_nodes());
        assert!(
            outcome.stats.rounds <= 2,
            "saturated churn must terminate at once, ran {} rounds",
            outcome.stats.rounds
        );
    }

    #[test]
    fn apply_deltas_accepts_a_fully_departed_graph() {
        use congest_graph::DeltaGraph;
        let mut rng = SmallRng::seed_from_u64(45);
        let g = generators::gnp(12, 0.3, &mut rng);
        let engine = Engine::build(&g, SimConfig::congest_for(&g), |_| Census {
            heard: Vec::new(),
        });
        let mut dg = DeltaGraph::new(g.clone());
        for v in g.nodes() {
            dg.remove_node(v);
        }
        assert_eq!(dg.num_live_nodes(), 0);
        let deltas = dg.take_log();
        let g2 = dg.compact();
        // Retargeting onto the all-departed compacted graph must be legal
        // (slot space preserved, every slot isolated), and the follow-up
        // run completes trivially: isolated nodes halt after one round.
        let outcome = engine.apply_deltas(&g2, &deltas).run(9);
        assert!(outcome.completed);
        assert!(outcome
            .outputs
            .iter()
            .all(|o| o.as_ref().is_some_and(Vec::is_empty)));
    }

    #[test]
    fn zero_slot_graph_completes_vacuously_on_every_executor() {
        use congest_graph::ShardPartition;
        let g = congest_graph::GraphBuilder::new().build();
        let seq = Engine::build(&g, SimConfig::congest_for(&g), |_| InstantHalt).run(1);
        assert!(seq.completed);
        assert_eq!(seq.stats.rounds, 0);
        let par = Engine::build(&g, SimConfig::congest_for(&g), |_| InstantHalt).run_parallel(1);
        assert!(par.completed);
        let p = ShardPartition::contiguous(0, 3);
        let sh = Engine::build(&g, SimConfig::congest_for(&g), |_| InstantHalt).run_sharded(1, &p);
        assert!(sh.outcome.completed);
        assert_eq!(sh.cross_shard_messages, 0);
    }

    #[test]
    fn sharded_cross_meter_counts_boundary_traffic_exactly() {
        use congest_graph::ShardPartition;
        // path(6) in 2 shards of 3: only the edge 2–3 crosses. Census
        // broadcasts once per node at init, so exactly one message per
        // direction crosses the boundary.
        let g = generators::path(6);
        let p = ShardPartition::contiguous(6, 2);
        let run = Engine::build(&g, SimConfig::congest_for(&g), |_| Census {
            heard: Vec::new(),
        })
        .run_sharded(3, &p);
        assert!(run.outcome.completed);
        assert_eq!(run.cross_shard_edges, 1);
        assert_eq!(run.cross_shard_messages, 2);
    }

    /// Broadcasts the sender id, then asserts every message arrived on the
    /// port whose neighbor is that sender — i.e. the plane scatter resolved
    /// reverse ports exactly as the old per-edge `position()` scan did.
    struct PortEcho;
    impl Protocol for PortEcho {
        type Msg = u32;
        type Output = ();
        fn init(&mut self, ctx: &mut Context<'_, u32>) {
            let id = ctx.id().0;
            ctx.broadcast(id);
        }
        fn round(&mut self, ctx: &mut Context<'_, u32>, inbox: Inbox<'_, u32>) -> Status<()> {
            assert_eq!(inbox.len(), ctx.degree());
            assert_eq!(inbox.num_ports(), ctx.degree());
            let mut last_port = None;
            for (port, id) in inbox {
                assert_eq!(ctx.neighbor(port), NodeId(id));
                assert_eq!(inbox.get(port), Some(id));
                // The CSR-backed inbox iterates in ascending port order by
                // construction.
                assert!(last_port.is_none_or(|p| p < port));
                last_port = Some(port);
            }
            Status::Halt(())
        }
    }

    /// Regression for the reverse-port table: `complete(512)` was the
    /// worst case of the old `O(Σ deg²)` construction in `Engine::build`;
    /// the engine now borrows the graph's `O(n + m)` table and must route
    /// every one of the 512·511 messages to the same port as before.
    #[test]
    fn delivery_ports_match_position_scan_on_complete_512() {
        let g = generators::complete(512);
        let outcome = run_protocol(&g, SimConfig::local(), |_| PortEcho, 0);
        assert!(outcome.completed);
        assert_eq!(outcome.stats.total_messages, 512 * 511);
    }

    /// A protocol that never halts, to exercise the round cap.
    struct Forever;
    impl Protocol for Forever {
        type Msg = ();
        type Output = ();
        fn init(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn round(&mut self, _ctx: &mut Context<'_, ()>, _inbox: Inbox<'_, ()>) -> Status<()> {
            Status::Active
        }
    }

    #[test]
    fn round_cap_respected() {
        let g = generators::path(3);
        let outcome = run_protocol(&g, SimConfig::local().with_max_rounds(10), |_| Forever, 0);
        assert!(!outcome.completed);
        assert_eq!(outcome.stats.rounds, 10);
        assert!(outcome.outputs.iter().all(Option::is_none));
    }

    #[test]
    fn traces_record_messages() {
        let g = generators::path(2);
        let outcome = run_protocol(
            &g,
            SimConfig::local().with_traces(),
            |_| Census { heard: Vec::new() },
            3,
        );
        assert_eq!(outcome.traces.len(), 2);
        assert_eq!(outcome.traces[0].round, 0);
        assert_eq!(outcome.traces[0].from, NodeId(0));
        assert_eq!(outcome.traces[0].to, NodeId(1));
    }

    /// One designated node halts in round 1; the other keeps broadcasting
    /// through round 2. The broadcaster's round-1 message reaches a node
    /// that halted in round 1, so exactly that one message must be
    /// dropped — whichever of the two ids halts.
    struct HaltOne {
        halter: u32,
    }
    impl Protocol for HaltOne {
        type Msg = u32;
        type Output = ();
        fn init(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.broadcast(0);
        }
        fn round(&mut self, ctx: &mut Context<'_, u32>, _inbox: Inbox<'_, u32>) -> Status<()> {
            if ctx.id().0 == self.halter || ctx.round() >= 2 {
                Status::Halt(())
            } else {
                ctx.broadcast(1);
                Status::Active
            }
        }
    }

    #[test]
    fn messages_to_halted_nodes_are_dropped() {
        // Timeline on the path 0–1 (halter = node h, sender = the other
        // node s):
        //   init:    both broadcast; both messages delivered in round 1.
        //   round 1: h halts; s broadcasts and stays active. s's message
        //            is *sent* in h's halting round → dropped.
        //   round 2: s (empty inbox) halts.
        for halter in [0u32, 1] {
            let g = generators::path(2);
            let outcome = run_protocol(&g, SimConfig::local(), |_| HaltOne { halter }, 0);
            assert!(outcome.completed);
            assert_eq!(outcome.stats.rounds, 2);
            assert_eq!(outcome.stats.total_messages, 3);
            assert_eq!(
                outcome.stats.dropped_messages, 1,
                "drop accounting must not depend on whether the halter's \
                 id is smaller (halter = {halter})"
            );
        }
    }

    #[test]
    fn drop_semantics_do_not_depend_on_node_order() {
        // Stronger variant on a star: the center halts in round 1 while
        // every leaf (ids both above and below the center's would-be
        // position) broadcasts in round 1. All leaf messages sent in
        // round 1 target the halted center and must be dropped; count is
        // the same no matter which node is the halter.
        let g = generators::star(5);
        let center = run_protocol(&g, SimConfig::local(), |_| HaltOne { halter: 0 }, 0);
        assert_eq!(center.stats.dropped_messages, 4);
        let leaf = run_protocol(&g, SimConfig::local(), |_| HaltOne { halter: 3 }, 0);
        // Only the center neighbors the halting leaf, so exactly its
        // round-1 message to the leaf is dropped.
        assert_eq!(leaf.stats.dropped_messages, 1);
    }

    /// The CONGEST budget is `8·(id_bits + weight_bits)`; both summands
    /// are ceil-log terms, so the budget must never shrink as the graph
    /// grows in `n` or its weights grow toward `W`.
    #[test]
    fn congest_budget_is_monotone_in_n_and_w() {
        let mut prev = 0;
        for n in [1usize, 2, 3, 16, 17, 100, 1_000, 10_000] {
            let g = generators::path(n);
            let budget = SimConfig::congest_for(&g).bit_budget.unwrap();
            assert!(budget >= prev, "budget shrank going to n = {n}");
            prev = budget;
        }
        let mut prev = 0;
        for w in [1u64, 2, 3, 255, 256, 1 << 20, 1 << 40, u64::MAX] {
            let mut g = generators::path(50);
            g.set_node_weight(NodeId(0), w);
            let budget = SimConfig::congest_for(&g).bit_budget.unwrap();
            assert!(budget >= prev, "budget shrank going to W = {w}");
            prev = budget;
        }
        // Edge weights feed the same W term as node weights.
        let mut g = generators::path(50);
        let small = SimConfig::congest_for(&g).bit_budget.unwrap();
        g.set_edge_weight(congest_graph::EdgeId(0), u64::MAX);
        let large = SimConfig::congest_for(&g).bit_budget.unwrap();
        assert!(large > small);
    }

    #[test]
    fn determinism_across_runs() {
        struct Roll;
        impl Protocol for Roll {
            type Msg = ();
            type Output = u64;
            fn init(&mut self, _ctx: &mut Context<'_, ()>) {}
            fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: Inbox<'_, ()>) -> Status<u64> {
                Status::Halt(ctx.rng().random())
            }
        }
        let g = generators::cycle(6);
        let a = run_protocol(&g, SimConfig::local(), |_| Roll, 99);
        let b = run_protocol(&g, SimConfig::local(), |_| Roll, 99);
        let c = run_protocol(&g, SimConfig::local(), |_| Roll, 100);
        let ax: Vec<_> = a.outputs.iter().map(|o| o.unwrap()).collect();
        let bx: Vec<_> = b.outputs.iter().map(|o| o.unwrap()).collect();
        let cx: Vec<_> = c.outputs.iter().map(|o| o.unwrap()).collect();
        assert_eq!(ax, bx);
        assert_ne!(ax, cx);
    }

    /// Message-heavy randomized protocol with staggered halts, used to
    /// pit the sequential and parallel executors against each other:
    /// every node draws a private deadline, then gossips random values,
    /// folding everything it hears into a running hash.
    struct RandomGossip {
        deadline: usize,
        acc: u64,
    }
    impl Protocol for RandomGossip {
        type Msg = u64;
        type Output = u64;
        fn init(&mut self, ctx: &mut Context<'_, u64>) {
            self.deadline = ctx.rng().random_range(1..=8);
            let roll: u64 = ctx.rng().random();
            self.acc = roll;
            ctx.broadcast(roll & 0xFFFF);
        }
        fn round(&mut self, ctx: &mut Context<'_, u64>, inbox: Inbox<'_, u64>) -> Status<u64> {
            for (port, m) in inbox {
                self.acc = self
                    .acc
                    .rotate_left(7)
                    .wrapping_add(m)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ port as u64;
            }
            if ctx.round() >= self.deadline {
                Status::Halt(self.acc)
            } else {
                let roll: u64 = ctx.rng().random();
                ctx.broadcast(roll & 0xFFFF);
                Status::Active
            }
        }
    }

    fn gossip() -> RandomGossip {
        RandomGossip {
            deadline: 0,
            acc: 0,
        }
    }

    /// FNV-1a over every output, statistic, and trace of a run — a compact
    /// fingerprint of the engine's externally observable behavior.
    fn outcome_hash(out: &RunOutcome<u64>) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100000001b3);
        };
        for o in &out.outputs {
            mix(o.unwrap());
        }
        mix(out.stats.rounds as u64);
        mix(out.stats.total_messages);
        mix(out.stats.max_message_bits as u64);
        mix(out.stats.budget_violations);
        mix(out.stats.dropped_messages);
        for t in &out.traces {
            mix(t.round as u64);
            mix(t.from.0 as u64);
            mix(t.to.0 as u64);
            mix(t.bits as u64);
        }
        h
    }

    #[test]
    fn run_parallel_is_bit_identical_to_run_on_gnp_1000() {
        let mut rng = SmallRng::seed_from_u64(2024);
        let g = generators::gnp(1000, 0.008, &mut rng);
        let config = SimConfig::congest_for(&g).with_traces();
        // Fingerprints recorded on the pre-CSR engine (PR 2's
        // `Vec<Vec<…>>` adjacency with per-`NodeInfo` clones) for seeds 1
        // and 77, and on the pre-flat-mailbox engine (PR 3's per-slot
        // `Vec` in/outboxes) for seeds 5 and 2024 — the two recordings
        // agree where they overlap, pinning the plane refactor to the
        // exact behavior of both ancestors: not a single output,
        // statistic, or trace may change.
        let recorded = [
            (1u64, 0x8a05ed62888b4b60u64),
            (77, 0x8c6e3fc93615c0c9),
            (5, 0x3a4363275fb53268),
            (2024, 0xfd55ba2d7db9f32e),
        ];
        for (seed, expected) in recorded {
            let seq = Engine::build(&g, config.clone(), |_| gossip()).run(seed);
            let par = Engine::build(&g, config.clone(), |_| gossip()).run_parallel(seed);
            assert!(seq.completed && par.completed);
            assert_eq!(seq.outputs, par.outputs);
            assert_eq!(seq.stats, par.stats);
            assert_eq!(seq.traces, par.traces);
            assert_eq!(
                outcome_hash(&seq),
                expected,
                "seed {seed}: outputs/stats/traces diverged from the \
                 pre-refactor engine"
            );
            // The staggered deadlines make some messages arrive at halted
            // nodes, so the run exercises the drop path it certifies.
            assert!(seq.stats.dropped_messages > 0);
            assert!(seq.stats.total_messages > 1000);
        }
    }

    /// The same bit-identity with tracing *off*, which enables active-slot
    /// compaction: the swap-compacted prefix must not change outputs or
    /// statistics relative to the traced (uncompacted) path.
    #[test]
    fn compaction_preserves_outputs_and_stats() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = generators::gnp(600, 0.01, &mut rng);
        let traced = SimConfig::congest_for(&g).with_traces();
        let plain = SimConfig::congest_for(&g);
        for seed in [3u64, 19] {
            let a = Engine::build(&g, traced.clone(), |_| gossip()).run(seed);
            let b = Engine::build(&g, plain.clone(), |_| gossip()).run(seed);
            let c = Engine::build(&g, plain.clone(), |_| gossip()).run_parallel(seed);
            assert_eq!(a.outputs, b.outputs);
            assert_eq!(a.stats, b.stats);
            assert_eq!(b.outputs, c.outputs);
            assert_eq!(b.stats, c.stats);
        }
    }

    #[test]
    fn full_message_drop_silences_every_link() {
        // Census halts after one exchange no matter what arrives, so under
        // a drop-everything adversary it completes with *empty* neighbor
        // lists and every sent message counted as adversary-dropped.
        let g = generators::complete(4);
        let config = SimConfig::congest_for(&g).with_adversary(Adversary::message_drops(1.0, 9));
        let outcome = run_protocol(&g, config, |_| Census { heard: Vec::new() }, 7);
        assert!(outcome.completed);
        assert_eq!(outcome.stats.total_messages, 12);
        assert_eq!(outcome.stats.adversary_dropped_messages, 12);
        assert_eq!(outcome.stats.dropped_messages, 0);
        for out in outcome.outputs {
            assert_eq!(out.unwrap(), vec![]);
        }
    }

    #[test]
    fn full_crash_stops_the_run_without_outputs() {
        let g = generators::cycle(6);
        let config = SimConfig::local()
            .with_max_rounds(50)
            .with_adversary(Adversary::node_crashes(1.0, 3));
        let outcome = run_protocol(&g, config, |_| Forever, 0);
        // Every node crashes at the start of round 1: no outputs, the run
        // ends immediately (nothing left to step), and completion is
        // withheld because crashed nodes never halted.
        assert!(!outcome.completed);
        assert_eq!(outcome.stats.crashed_nodes, 6);
        assert_eq!(outcome.stats.rounds, 1);
        assert!(outcome.outputs.iter().all(Option::is_none));
    }

    /// Broadcasts every round and never halts: under a crash adversary,
    /// the survivors' messages to freshly crashed neighbors must be
    /// counted as dropped (dead receiver), exactly like messages to
    /// halted nodes.
    struct Blaster;
    impl Protocol for Blaster {
        type Msg = u32;
        type Output = ();
        fn init(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.broadcast(1);
        }
        fn round(&mut self, ctx: &mut Context<'_, u32>, _inbox: Inbox<'_, u32>) -> Status<()> {
            ctx.broadcast(1);
            Status::Active
        }
    }

    #[test]
    fn crashed_nodes_absorb_messages_like_halted_ones() {
        let g = generators::complete(8);
        let config = SimConfig::local()
            .with_max_rounds(40)
            .with_adversary(Adversary::node_crashes(0.5, 11));
        let outcome = run_protocol(&g, config, |_| Blaster, 0);
        // With per-round crash probability ½ on 8 nodes, 40 rounds kill
        // everyone (probability of survival ≈ 8·2⁻⁴⁰) — and every message
        // a survivor sent to an already-crashed neighbor must be in
        // `dropped_messages`.
        assert_eq!(outcome.stats.crashed_nodes, 8);
        assert!(!outcome.completed);
        assert!(outcome.stats.total_messages > 0);
        assert!(
            outcome.stats.dropped_messages > 0,
            "messages to crashed receivers must be counted as dropped"
        );
        assert_eq!(outcome.stats.adversary_dropped_messages, 0);
        assert!(outcome.outputs.iter().all(Option::is_none));
    }

    #[test]
    fn zero_probability_adversary_is_bit_identical_to_none() {
        let mut rng = SmallRng::seed_from_u64(31);
        let g = generators::gnp(200, 0.04, &mut rng);
        let plain = SimConfig::congest_for(&g).with_traces();
        let zeroed = plain
            .clone()
            .with_adversary(Adversary::default().with_seed(0xDEAD));
        for seed in [2u64, 40] {
            let a = Engine::build(&g, plain.clone(), |_| gossip()).run(seed);
            let b = Engine::build(&g, zeroed.clone(), |_| gossip()).run(seed);
            assert_eq!(a.outputs, b.outputs);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.traces, b.traces);
        }
    }

    #[test]
    fn fault_schedules_replay_and_parallelize_bit_identically() {
        let mut rng = SmallRng::seed_from_u64(17);
        let g = generators::gnp(400, 0.02, &mut rng);
        let adv = Adversary {
            drop_prob: 0.15,
            crash_prob: 0.01,
            seed: 77,
            ..Adversary::default()
        };
        let config = SimConfig::congest_for(&g)
            .with_max_rounds(64)
            .with_adversary(adv);
        let a = Engine::build(&g, config.clone(), |_| gossip()).run(5);
        let b = Engine::build(&g, config.clone(), |_| gossip()).run(5);
        let par = Engine::build(&g, config.clone(), |_| gossip()).run_parallel(5);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.outputs, par.outputs);
        assert_eq!(a.stats, par.stats, "faults must be chunking-independent");
        assert!(a.stats.adversary_dropped_messages > 0);
        // A different adversary seed yields a different schedule.
        let other = SimConfig::congest_for(&g)
            .with_max_rounds(64)
            .with_adversary(Adversary { seed: 78, ..adv });
        let c = Engine::build(&g, other, |_| gossip()).run(5);
        assert_ne!(
            (a.outputs, a.stats),
            (c.outputs, c.stats),
            "adversary seed must matter"
        );
    }

    #[test]
    fn run_parallel_matches_run_on_tiny_and_empty_graphs() {
        for g in [
            generators::path(1),
            generators::path(2),
            generators::complete(9),
        ] {
            let seq = Engine::build(&g, SimConfig::local(), |_| gossip()).run(5);
            let par = Engine::build(&g, SimConfig::local(), |_| gossip()).run_parallel(5);
            assert_eq!(seq.outputs, par.outputs);
            assert_eq!(seq.stats, par.stats);
        }
    }

    #[test]
    fn zero_delay_scheduler_is_bit_identical_to_none() {
        // The synchronous special case: a scheduler that cannot delay must
        // leave outputs, stats, *and traces* untouched — the engine takes
        // the single-plane path and draws no delay coins.
        let mut rng = SmallRng::seed_from_u64(31);
        let g = generators::gnp(200, 0.04, &mut rng);
        let plain = SimConfig::congest_for(&g).with_traces();
        let sched = plain
            .clone()
            .with_scheduler(AsyncScheduler::uniform(0, 0xBEEF));
        for seed in [2u64, 40] {
            let a = Engine::build(&g, plain.clone(), |_| gossip()).run(seed);
            let b = Engine::build(&g, sched.clone(), |_| gossip()).run(seed);
            assert_eq!(a.outputs, b.outputs);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.traces, b.traces);
            assert_eq!(b.stats.delayed_messages, 0);
        }
    }

    #[test]
    fn delays_change_behavior_deterministically_and_in_parallel() {
        let mut rng = SmallRng::seed_from_u64(17);
        let g = generators::gnp(400, 0.02, &mut rng);
        for sched in [
            AsyncScheduler::uniform(3, 21),
            AsyncScheduler::geometric(0.5, 6, 22),
        ] {
            let config = SimConfig::congest_for(&g)
                .with_max_rounds(64)
                .with_scheduler(sched);
            let a = Engine::build(&g, config.clone(), |_| gossip()).run(5);
            let b = Engine::build(&g, config.clone(), |_| gossip()).run(5);
            let par = Engine::build(&g, config, |_| gossip()).run_parallel(5);
            assert!(a.stats.delayed_messages > 0, "delays must fire");
            assert_eq!(a.outputs, b.outputs, "delay schedules must replay");
            assert_eq!(a.stats, b.stats);
            assert_eq!(
                a.outputs, par.outputs,
                "delays must be chunking-independent"
            );
            assert_eq!(a.stats, par.stats);
            let clean = Engine::build(&g, SimConfig::congest_for(&g), |_| gossip()).run(5);
            assert_ne!(a.outputs, clean.outputs, "delays must be observable");
        }
    }

    #[test]
    fn duplication_redelivers_a_round_late() {
        // Census halts after its first exchange, so on a path the only
        // effect of always-duplicate is the counter and the late copies
        // landing at halted receivers (counted dropped).
        let g = generators::path(3);
        let config =
            SimConfig::congest_for(&g).with_adversary(Adversary::message_duplicates(1.0, 4));
        let outcome = run_protocol(&g, config, |_| Census { heard: Vec::new() }, 7);
        assert!(outcome.completed);
        assert_eq!(outcome.stats.total_messages, 4);
        assert_eq!(outcome.stats.duplicated_messages, 4);
        // Every node still hears each neighbor exactly once before halting.
        assert_eq!(outcome.outputs[1].as_ref().unwrap().len(), 2);
    }

    /// Counts how many messages arrive per round, never halting — lets
    /// tests observe duplicates and delays as receiver-side arrivals.
    struct ArrivalCounter {
        arrivals: Vec<usize>,
    }
    impl Protocol for ArrivalCounter {
        type Msg = u32;
        type Output = Vec<usize>;
        fn init(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.broadcast(ctx.id().0);
        }
        fn round(
            &mut self,
            ctx: &mut Context<'_, u32>,
            inbox: Inbox<'_, u32>,
        ) -> Status<Vec<usize>> {
            self.arrivals.push(inbox.len());
            if ctx.round() >= 6 {
                Status::Halt(self.arrivals.clone())
            } else {
                Status::Active
            }
        }
    }

    #[test]
    fn duplicated_copies_arrive_exactly_one_round_after_originals() {
        let g = generators::path(2);
        let config = SimConfig::congest_for(&g)
            .with_max_rounds(10)
            .with_adversary(Adversary::message_duplicates(1.0, 4));
        let outcome = run_protocol(&g, config, |_| ArrivalCounter { arrivals: vec![] }, 0);
        assert!(outcome.completed);
        // Only init broadcasts: original in round 1, duplicate in round 2.
        for out in outcome.outputs {
            assert_eq!(out.unwrap(), vec![1, 1, 0, 0, 0, 0]);
        }
    }

    #[test]
    fn corruption_discards_unmutatable_payloads_like_drops() {
        // Census carries u32 payloads, which mutate (bit flip) rather than
        // discard — neighbor lists change but everyone still hears degree
        // many values. `()` payloads (InstantHalt) never send, so use
        // Census for the mutation path and a bool echo for discards.
        let g = generators::complete(4);
        let config =
            SimConfig::congest_for(&g).with_adversary(Adversary::message_corruption(1.0, 6));
        let outcome = run_protocol(&g, config, |_| Census { heard: Vec::new() }, 7);
        assert!(outcome.completed);
        assert_eq!(outcome.stats.corrupted_messages, 12);
        assert_eq!(outcome.stats.adversary_dropped_messages, 0);
        // Bit-flipped ids still arrive: every node hears all 3 neighbors.
        for out in outcome.outputs {
            assert_eq!(out.unwrap().len(), 3);
        }

        /// Echoes `true` once; bool's `corrupted` defaults to checksum
        /// discard, so under full corruption nobody hears anything.
        struct BoolEcho;
        impl Protocol for BoolEcho {
            type Msg = bool;
            type Output = usize;
            fn init(&mut self, ctx: &mut Context<'_, bool>) {
                ctx.broadcast(true);
            }
            fn round(
                &mut self,
                _ctx: &mut Context<'_, bool>,
                inbox: Inbox<'_, bool>,
            ) -> Status<usize> {
                Status::Halt(inbox.len())
            }
        }
        let config =
            SimConfig::congest_for(&g).with_adversary(Adversary::message_corruption(1.0, 6));
        let outcome = run_protocol(&g, config, |_| BoolEcho, 7);
        assert_eq!(outcome.stats.corrupted_messages, 12);
        assert!(outcome.outputs.into_iter().all(|o| o.unwrap() == 0));
    }

    #[test]
    fn reordering_permutes_inboxes_without_losing_messages() {
        let g = generators::complete(8);
        let config = SimConfig::congest_for(&g).with_adversary(Adversary::inbox_reorders(1.0, 13));
        let outcome = run_protocol(&g, config.clone(), |_| Census { heard: Vec::new() }, 7);
        assert!(outcome.completed);
        // Census sorts what it heard, so the permutation is invisible in
        // outputs — nothing may be lost or duplicated by a shuffle.
        for out in &outcome.outputs {
            assert_eq!(out.as_ref().unwrap().len(), 7);
        }
        // But gossip folds port indices into its hash, so a shuffled run
        // must diverge from the clean one — deterministically.
        let mut rng = SmallRng::seed_from_u64(23);
        let g = generators::gnp(300, 0.03, &mut rng);
        let shuffled = SimConfig::congest_for(&g)
            .with_max_rounds(64)
            .with_adversary(Adversary::inbox_reorders(0.5, 13));
        let a = Engine::build(&g, shuffled.clone(), |_| gossip()).run(5);
        let b = Engine::build(&g, shuffled.clone(), |_| gossip()).run(5);
        let par = Engine::build(&g, shuffled, |_| gossip()).run_parallel(5);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.outputs, par.outputs);
        assert_eq!(a.stats, par.stats);
        let clean = Engine::build(&g, SimConfig::congest_for(&g), |_| gossip()).run(5);
        assert_ne!(a.outputs, clean.outputs, "reordering must be observable");
    }

    #[test]
    fn restarted_nodes_rejoin_and_can_complete_the_run() {
        // Gossip halts once `round >= deadline ≤ 8`, so even a node that
        // restarts late halts promptly after rejoining: with moderate
        // crashes plus restart-after-2, the run must eventually complete
        // with every output present despite crashed_nodes > 0.
        let g = generators::cycle(20);
        let config = SimConfig::congest_for(&g)
            .with_max_rounds(5_000)
            .with_adversary(Adversary::node_crashes(0.05, 3).with_restart_after(2));
        let a = Engine::build(&g, config.clone(), |_| gossip()).run(9);
        assert!(
            a.stats.crashed_nodes > 0,
            "5% crashes over 20 nodes must fire"
        );
        assert_eq!(
            a.stats.crashed_nodes, a.stats.restarted_nodes,
            "with completion, every crash was followed by a restart"
        );
        assert!(a.completed, "restart mode must let the run complete");
        assert!(a.outputs.iter().all(Option::is_some));
        // Replay + parallel identity under restart.
        let b = Engine::build(&g, config.clone(), |_| gossip()).run(9);
        let par = Engine::build(&g, config, |_| gossip()).run_parallel(9);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.outputs, par.outputs);
        assert_eq!(a.stats, par.stats);
        // Without restart, the same crash schedule leaves holes.
        let crash_only = SimConfig::congest_for(&g)
            .with_max_rounds(5_000)
            .with_adversary(Adversary::node_crashes(0.05, 3));
        let c = Engine::build(&g, crash_only, |_| gossip()).run(9);
        assert!(!c.completed);
        assert_eq!(c.stats.restarted_nodes, 0);
    }

    #[test]
    fn every_knob_at_once_replays_and_parallelizes() {
        let mut rng = SmallRng::seed_from_u64(41);
        let g = generators::gnp(300, 0.03, &mut rng);
        let adv = Adversary {
            drop_prob: 0.05,
            dup_prob: 0.1,
            reorder_prob: 0.2,
            corrupt_prob: 0.05,
            crash_prob: 0.01,
            restart_after: Some(3),
            edge_flip_prob: 0.02,
            node_join_prob: 0.3,
            node_leave_prob: 0.01,
            seed: 99,
        };
        let config = SimConfig::congest_for(&g)
            .with_max_rounds(128)
            .with_scheduler(AsyncScheduler::uniform(2, 55))
            .with_adversary(adv);
        let a = Engine::build(&g, config.clone(), |_| gossip()).run(5);
        let b = Engine::build(&g, config.clone(), |_| gossip()).run(5);
        let par = Engine::build(&g, config, |_| gossip()).run_parallel(5);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.outputs, par.outputs);
        assert_eq!(a.stats, par.stats, "all knobs must be chunking-independent");
        assert!(a.stats.delayed_messages > 0);
        assert!(a.stats.duplicated_messages > 0);
        assert!(a.stats.corrupted_messages > 0);
        assert!(a.stats.adversary_dropped_messages > 0);
        assert!(a.stats.edges_flipped > 0);
        assert!(a.stats.nodes_left > 0);
    }

    #[test]
    fn edge_flips_replay_and_parallelize_bit_identically() {
        let mut rng = SmallRng::seed_from_u64(23);
        let g = generators::gnp(300, 0.03, &mut rng);
        let config = SimConfig::congest_for(&g)
            .with_max_rounds(64)
            .with_adversary(Adversary::edge_flips(0.02, 13));
        let a = Engine::build(&g, config.clone(), |_| gossip()).run(5);
        let b = Engine::build(&g, config.clone(), |_| gossip()).run(5);
        let par = Engine::build(&g, config, |_| gossip()).run_parallel(5);
        assert!(
            a.stats.edges_flipped > 0,
            "2% flips over 64 rounds must fire"
        );
        assert!(
            a.stats.adversary_dropped_messages > 0,
            "down edges must eat messages"
        );
        assert_eq!(a.outputs, b.outputs, "flip schedules must replay");
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.outputs, par.outputs, "flips must be chunking-independent");
        assert_eq!(a.stats, par.stats);
        let clean = Engine::build(&g, SimConfig::congest_for(&g), |_| gossip()).run(5);
        assert_ne!(a.outputs, clean.outputs, "flips must be observable");
        assert_eq!(clean.stats.edges_flipped, 0);
    }

    #[test]
    fn node_churn_replays_and_parallelizes_bit_identically() {
        let g = generators::cycle(24);
        let config = SimConfig::congest_for(&g)
            .with_max_rounds(5_000)
            .with_adversary(Adversary::node_churn(0.3, 0.03, 7));
        let a = Engine::build(&g, config.clone(), |_| gossip()).run(9);
        assert!(a.stats.nodes_left > 0, "3% leaves over 24 nodes must fire");
        assert!(
            a.stats.nodes_joined > 0,
            "a 30% join coin must readmit leavers"
        );
        let b = Engine::build(&g, config.clone(), |_| gossip()).run(9);
        let par = Engine::build(&g, config, |_| gossip()).run_parallel(9);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.outputs, par.outputs);
        assert_eq!(a.stats, par.stats, "churn must be chunking-independent");
    }

    #[test]
    fn leaves_without_joins_leave_holes() {
        let g = generators::cycle(16);
        let config = SimConfig::congest_for(&g)
            .with_max_rounds(200)
            .with_adversary(Adversary::node_churn(0.0, 0.5, 3));
        let outcome = run_protocol(&g, config, |_| Forever, 0);
        assert!(!outcome.completed);
        assert!(outcome.stats.nodes_left > 0);
        assert_eq!(outcome.stats.nodes_joined, 0);
        assert_eq!(outcome.stats.crashed_nodes, 0, "leaves are not crashes");
    }

    #[test]
    fn apply_deltas_retargets_onto_the_compacted_graph() {
        use congest_graph::DeltaGraph;
        // Grow a path 0–1–2 by the chord {0, 2} through the overlay, then
        // retarget a pre-built engine onto the compacted graph: the run
        // must be bit-identical to an engine built on that graph directly.
        let g1 = generators::path(3);
        let mut dg = DeltaGraph::new(generators::path(3));
        dg.insert_edge(NodeId(0), NodeId(2), 1);
        let deltas = dg.take_log();
        let g2 = dg.compact();
        let retargeted = Engine::build(&g1, SimConfig::local(), |_| Census { heard: Vec::new() })
            .apply_deltas(&g2, &deltas)
            .run(7);
        let fresh = Engine::build(&g2, SimConfig::local(), |_| Census { heard: Vec::new() }).run(7);
        assert!(retargeted.completed);
        assert_eq!(retargeted.outputs, fresh.outputs);
        assert_eq!(retargeted.stats, fresh.stats);
        assert_eq!(
            retargeted.outputs[1].as_ref().unwrap(),
            &vec![NodeId(0), NodeId(2)]
        );
        assert_eq!(
            retargeted.outputs[0].as_ref().unwrap(),
            &vec![NodeId(1), NodeId(2)],
            "node 0 must see the inserted chord"
        );
    }

    #[test]
    fn apply_deltas_grows_the_slot_space_for_added_nodes() {
        use congest_graph::DeltaGraph;
        let g1 = generators::path(2);
        let mut dg = DeltaGraph::new(generators::path(2));
        let v = dg.add_node(1);
        dg.insert_edge(NodeId(1), v, 1);
        let deltas = dg.take_log();
        let g2 = dg.compact();
        let outcome = Engine::build(&g1, SimConfig::local(), |_| Census { heard: Vec::new() })
            .apply_deltas(&g2, &deltas)
            .run(3);
        assert!(outcome.completed);
        assert_eq!(outcome.outputs.len(), 3);
        assert_eq!(outcome.outputs[2].as_ref().unwrap(), &vec![NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "Engine::apply_deltas: graph must keep the slot-id space")]
    fn apply_deltas_rejects_a_shrunken_graph() {
        let g1 = generators::path(3);
        let g2 = generators::path(2);
        let _ = Engine::build(&g1, SimConfig::local(), |_| Forever)
            .apply_deltas(&g2, &DeltaSet::default());
    }

    #[test]
    #[should_panic(expected = "Engine::apply_deltas: delta node")]
    fn apply_deltas_rejects_out_of_range_delta_nodes() {
        let g = generators::path(2);
        let deltas = DeltaSet {
            joined: vec![NodeId(9)],
            ..DeltaSet::default()
        };
        let _ = Engine::build(&g, SimConfig::local(), |_| Forever).apply_deltas(&g, &deltas);
    }

    /// The memory guard the 10M-node bench rows rely on: per directed
    /// edge, a plane costs 8 payload bytes plus at most 1 amortized
    /// occupancy byte at the bench matrix's average degree 8 — and the
    /// exact accounting never exceeds the homogeneous estimate on a
    /// degree-homogeneous graph.
    #[test]
    fn plane_bytes_per_directed_edge_at_most_nine() {
        for n in [1_000usize, 10_000, 1_000_000] {
            let directed = 8 * n;
            for ring_len in [1usize, 2, 4] {
                let per_plane = plane_bytes(n, directed, ring_len) / (1 + ring_len);
                assert!(
                    per_plane <= 9 * directed,
                    "n = {n}: {per_plane} bytes/plane exceeds 9 per directed edge"
                );
            }
        }
        // Exact accounting on a real degree-8-average graph.
        let mut rng = SmallRng::seed_from_u64(2024);
        let g = generators::gnp(1000, 0.008, &mut rng);
        let directed = g.row_offsets()[g.num_nodes()] as usize;
        assert!(plane_bytes_for(&g, 1) <= 2 * 9 * directed);
        // The exact figure is what the estimate models: they agree on a
        // perfectly homogeneous graph (a cycle: degree 2 everywhere).
        let c = generators::cycle(64);
        assert_eq!(plane_bytes_for(&c, 1), plane_bytes(64, 128, 1));
    }

    #[test]
    #[should_panic(expected = "Adversary::crash_prob")]
    fn engine_build_rejects_mis_coined_struct_literals() {
        let g = generators::path(2);
        let config = SimConfig::local().with_max_rounds(4);
        let config = SimConfig {
            adversary: Some(Adversary {
                crash_prob: f64::NAN,
                ..Adversary::default()
            }),
            ..config
        };
        let _ = Engine::build(&g, config, |_| Forever);
    }
}
