use congest_graph::{Graph, NodeId};
use rand::rngs::SmallRng;

use crate::message::bits_for_count;
use crate::rng::node_rng;
use crate::{Context, Message, NodeInfo, Port, Protocol, Status};

/// Simulation configuration: model (bit budget) and safety limits.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Per-message bit budget; `None` simulates the LOCAL model
    /// (unbounded messages). Budget overruns are *recorded*, not fatal —
    /// see [`RunStats::budget_violations`].
    pub bit_budget: Option<usize>,
    /// Hard cap on the number of rounds; nodes still active afterwards
    /// produce `None` outputs and [`RunOutcome::completed`] is false.
    pub max_rounds: usize,
    /// Record every message as a [`MessageTrace`] (memory-hungry; meant
    /// for congestion analyses on small graphs).
    pub record_traces: bool,
}

impl SimConfig {
    /// CONGEST configuration for graph `g`: per-message budget of
    /// `8·(⌈log₂ n⌉ + max(⌈log₂ W⌉, ⌈log₂ n⌉))` bits, the usual reading of
    /// "a constant number of ids and weights per message" with weights
    /// polynomial in `n`.
    pub fn congest_for(g: &Graph) -> Self {
        let id_bits = bits_for_count(g.num_nodes().max(2));
        let weight_bits = crate::bits_for_value(g.max_node_weight().max(g.max_edge_weight()))
            .max(id_bits);
        SimConfig {
            bit_budget: Some(8 * (id_bits + weight_bits)),
            max_rounds: 1_000_000,
            record_traces: false,
        }
    }

    /// LOCAL configuration: unbounded message size.
    pub fn local() -> Self {
        SimConfig {
            bit_budget: None,
            max_rounds: 1_000_000,
            record_traces: false,
        }
    }

    /// Returns the configuration with a different round cap.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Returns the configuration with message tracing enabled.
    pub fn with_traces(mut self) -> Self {
        self.record_traces = true;
        self
    }
}

/// One recorded message (requires [`SimConfig::record_traces`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageTrace {
    /// Round in which the message was *sent*.
    pub round: usize,
    /// Sender node.
    pub from: NodeId,
    /// Receiver node.
    pub to: NodeId,
    /// Message size in bits.
    pub bits: usize,
}

/// Aggregate statistics of a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of communication rounds executed (excluding `init`).
    pub rounds: usize,
    /// Total messages sent (including ones dropped at halted receivers).
    pub total_messages: u64,
    /// Largest message observed, in bits.
    pub max_message_bits: usize,
    /// Messages exceeding the configured bit budget.
    pub budget_violations: u64,
    /// Messages that arrived at nodes which had already halted.
    pub dropped_messages: u64,
}

/// Result of running a protocol to completion (or to the round cap).
#[derive(Clone, Debug)]
pub struct RunOutcome<O> {
    /// Per-node outputs; `None` for nodes still active when the round cap
    /// was reached.
    pub outputs: Vec<Option<O>>,
    /// Aggregate statistics.
    pub stats: RunStats,
    /// Whether every node halted before the round cap.
    pub completed: bool,
    /// Message traces, if [`SimConfig::record_traces`] was set.
    pub traces: Vec<MessageTrace>,
}

impl<O> RunOutcome<O> {
    /// Unwraps all outputs, panicking if any node failed to halt.
    ///
    /// # Panics
    /// Panics if the run did not complete.
    pub fn into_outputs(self) -> Vec<O> {
        assert!(self.completed, "run hit the round cap before all nodes halted");
        self.outputs
            .into_iter()
            .map(|o| o.expect("completed runs have all outputs"))
            .collect()
    }
}

/// Runs one [`Protocol`] instance per node of a graph.
///
/// Build with [`Engine::build`], execute with [`Engine::run`]. See the
/// crate-level docs for an end-to-end example.
pub struct Engine<'g, P: Protocol> {
    graph: &'g Graph,
    config: SimConfig,
    infos: Vec<NodeInfo>,
    /// `reverse_port[v][p]` = the port at `neighbor(v, p)` that leads back
    /// to `v`; used to deliver into the receiver's port-indexed inbox.
    reverse_port: Vec<Vec<Port>>,
    nodes: Vec<P>,
}

impl<'g, P: Protocol> Engine<'g, P> {
    /// Creates an engine, instantiating the protocol at every node via
    /// `factory` (called in ascending node-id order).
    pub fn build(
        graph: &'g Graph,
        config: SimConfig,
        mut factory: impl FnMut(&NodeInfo) -> P,
    ) -> Self {
        let n = graph.num_nodes();
        let max_degree = graph.max_degree();
        let max_node_weight = graph.max_node_weight();
        let max_edge_weight = graph.max_edge_weight();
        let mut infos = Vec::with_capacity(n);
        for v in graph.nodes() {
            let neighbor_ids: Vec<NodeId> = graph.neighbors(v).iter().map(|&(u, _)| u).collect();
            let edge_weights: Vec<u64> = graph
                .neighbors(v)
                .iter()
                .map(|&(_, e)| graph.edge_weight(e))
                .collect();
            infos.push(NodeInfo {
                id: v,
                weight: graph.node_weight(v),
                neighbor_ids,
                edge_weights,
                n,
                max_degree,
                max_node_weight,
                max_edge_weight,
            });
        }
        let mut reverse_port = Vec::with_capacity(n);
        for v in graph.nodes() {
            let mut row = Vec::with_capacity(graph.degree(v));
            for &(u, _) in graph.neighbors(v) {
                let back = graph
                    .neighbors(u)
                    .iter()
                    .position(|&(w, _)| w == v)
                    .expect("adjacency is symmetric");
                row.push(back);
            }
            reverse_port.push(row);
        }
        let nodes = infos.iter().map(&mut factory).collect();
        Engine {
            graph,
            config,
            infos,
            reverse_port,
            nodes,
        }
    }

    /// Runs the protocol to completion (all nodes halted) or to the round
    /// cap, using `seed` to derive every node's private RNG.
    pub fn run(mut self, seed: u64) -> RunOutcome<P::Output> {
        let n = self.graph.num_nodes();
        let mut rngs: Vec<SmallRng> = self
            .graph
            .nodes()
            .map(|v| node_rng(seed, v))
            .collect();
        let mut outputs: Vec<Option<P::Output>> = vec![None; n];
        let mut active: Vec<bool> = vec![true; n];
        let mut active_count = n;
        let mut stats = RunStats::default();
        let mut traces = Vec::new();

        // Inboxes for the *next* round, indexed by receiver.
        let mut next_inbox: Vec<Vec<(Port, P::Msg)>> = vec![Vec::new(); n];

        // Reusable outbox buffer sized to the max degree.
        let mut outbox: Vec<Option<P::Msg>> = Vec::new();

        // Round 0: init.
        for v in 0..n {
            outbox.clear();
            outbox.resize(self.infos[v].degree(), None);
            let mut ctx = Context {
                info: &self.infos[v],
                rng: &mut rngs[v],
                round: 0,
                outbox: &mut outbox,
            };
            self.nodes[v].init(&mut ctx);
            Self::collect(
                &self.config,
                &self.infos[v],
                &self.reverse_port[v],
                &mut outbox,
                &active,
                &mut next_inbox,
                &mut stats,
                &mut traces,
                0,
            );
        }

        let mut inbox_buf: Vec<(Port, P::Msg)> = Vec::new();
        while active_count > 0 && stats.rounds < self.config.max_rounds {
            let round = stats.rounds + 1;
            stats.rounds = round;
            // Swap in this round's inboxes.
            let mut inboxes = std::mem::take(&mut next_inbox);
            next_inbox = vec![Vec::new(); n];
            for v in 0..n {
                if !active[v] {
                    continue;
                }
                inbox_buf.clear();
                inbox_buf.append(&mut inboxes[v]);
                inbox_buf.sort_by_key(|&(p, _)| p);
                outbox.clear();
                outbox.resize(self.infos[v].degree(), None);
                let mut ctx = Context {
                    info: &self.infos[v],
                    rng: &mut rngs[v],
                    round,
                    outbox: &mut outbox,
                };
                let status = self.nodes[v].round(&mut ctx, &inbox_buf);
                Self::collect(
                    &self.config,
                    &self.infos[v],
                    &self.reverse_port[v],
                    &mut outbox,
                    &active,
                    &mut next_inbox,
                    &mut stats,
                    &mut traces,
                    round,
                );
                if let Status::Halt(out) = status {
                    outputs[v] = Some(out);
                    active[v] = false;
                    active_count -= 1;
                }
            }
        }

        RunOutcome {
            outputs,
            stats,
            completed: active_count == 0,
            traces,
        }
    }

    /// Moves one node's outbox into the receivers' next-round inboxes,
    /// updating statistics.
    #[allow(clippy::too_many_arguments)]
    fn collect(
        config: &SimConfig,
        info: &NodeInfo,
        reverse_port: &[Port],
        outbox: &mut [Option<P::Msg>],
        active: &[bool],
        next_inbox: &mut [Vec<(Port, P::Msg)>],
        stats: &mut RunStats,
        traces: &mut Vec<MessageTrace>,
        round: usize,
    ) {
        for (port, slot) in outbox.iter_mut().enumerate() {
            let Some(msg) = slot.take() else { continue };
            let bits = msg.bit_size();
            stats.total_messages += 1;
            stats.max_message_bits = stats.max_message_bits.max(bits);
            if let Some(budget) = config.bit_budget {
                if bits > budget {
                    stats.budget_violations += 1;
                }
            }
            let to = info.neighbor_ids[port];
            if config.record_traces {
                traces.push(MessageTrace {
                    round,
                    from: info.id,
                    to,
                    bits,
                });
            }
            if active[to.index()] {
                next_inbox[to.index()].push((reverse_port[port], msg));
            } else {
                stats.dropped_messages += 1;
            }
        }
    }
}

/// Convenience wrapper: build and run in one call.
///
/// ```
/// use congest_graph::generators;
/// use congest_sim::{run_protocol, Context, Protocol, SimConfig, Status};
///
/// struct Degree;
/// impl Protocol for Degree {
///     type Msg = ();
///     type Output = usize;
///     fn init(&mut self, _ctx: &mut Context<'_, ()>) {}
///     fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[(usize, ())])
///         -> Status<usize>
///     {
///         Status::Halt(ctx.degree())
///     }
/// }
///
/// let g = generators::star(5);
/// let outcome = run_protocol(&g, SimConfig::local(), |_| Degree, 1);
/// assert_eq!(outcome.outputs[0], Some(4));
/// ```
pub fn run_protocol<P: Protocol>(
    graph: &Graph,
    config: SimConfig,
    factory: impl FnMut(&NodeInfo) -> P,
    seed: u64,
) -> RunOutcome<P::Output> {
    Engine::build(graph, config, factory).run(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    /// Each node halts immediately, outputting its degree.
    struct InstantHalt;
    impl Protocol for InstantHalt {
        type Msg = ();
        type Output = usize;
        fn init(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[(Port, ())]) -> Status<usize> {
            Status::Halt(ctx.degree())
        }
    }

    /// Echoes its id to all neighbors each round; halts after collecting
    /// all neighbor ids (which takes exactly one exchange).
    struct Census {
        heard: Vec<NodeId>,
    }
    impl Protocol for Census {
        type Msg = u32;
        type Output = Vec<NodeId>;
        fn init(&mut self, ctx: &mut Context<'_, u32>) {
            let id = ctx.id().0;
            ctx.broadcast(id);
        }
        fn round(
            &mut self,
            _ctx: &mut Context<'_, u32>,
            inbox: &[(Port, u32)],
        ) -> Status<Vec<NodeId>> {
            for &(_, id) in inbox {
                self.heard.push(NodeId(id));
            }
            self.heard.sort_unstable();
            Status::Halt(self.heard.clone())
        }
    }

    #[test]
    fn instant_halt_runs_one_round() {
        let g = generators::cycle(5);
        let outcome = run_protocol(&g, SimConfig::local(), |_| InstantHalt, 0);
        assert!(outcome.completed);
        assert_eq!(outcome.stats.rounds, 1);
        assert_eq!(outcome.stats.total_messages, 0);
        assert!(outcome.outputs.iter().all(|o| *o == Some(2)));
    }

    #[test]
    fn census_learns_neighbor_ids() {
        let g = generators::star(4);
        let outcome = run_protocol(
            &g,
            SimConfig::congest_for(&g),
            |_| Census { heard: Vec::new() },
            7,
        );
        assert!(outcome.completed);
        let outputs = outcome.outputs;
        assert_eq!(
            outputs[0].as_ref().unwrap(),
            &vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        for leaf in 1..4 {
            assert_eq!(outputs[leaf].as_ref().unwrap(), &vec![NodeId(0)]);
        }
    }

    #[test]
    fn message_stats_counted() {
        let g = generators::complete(4);
        let outcome = run_protocol(
            &g,
            SimConfig::congest_for(&g),
            |_| Census { heard: Vec::new() },
            7,
        );
        // Every node broadcasts once at init: 4 nodes × 3 ports.
        assert_eq!(outcome.stats.total_messages, 12);
        assert_eq!(outcome.stats.budget_violations, 0);
        assert!(outcome.stats.max_message_bits >= 1);
    }

    /// A protocol that never halts, to exercise the round cap.
    struct Forever;
    impl Protocol for Forever {
        type Msg = ();
        type Output = ();
        fn init(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn round(&mut self, _ctx: &mut Context<'_, ()>, _inbox: &[(Port, ())]) -> Status<()> {
            Status::Active
        }
    }

    #[test]
    fn round_cap_respected() {
        let g = generators::path(3);
        let outcome = run_protocol(&g, SimConfig::local().with_max_rounds(10), |_| Forever, 0);
        assert!(!outcome.completed);
        assert_eq!(outcome.stats.rounds, 10);
        assert!(outcome.outputs.iter().all(Option::is_none));
    }

    #[test]
    fn traces_record_messages() {
        let g = generators::path(2);
        let outcome = run_protocol(
            &g,
            SimConfig::local().with_traces(),
            |_| Census { heard: Vec::new() },
            3,
        );
        assert_eq!(outcome.traces.len(), 2);
        assert_eq!(outcome.traces[0].round, 0);
        assert_eq!(outcome.traces[0].from, NodeId(0));
        assert_eq!(outcome.traces[0].to, NodeId(1));
    }

    #[test]
    fn messages_to_halted_nodes_are_dropped() {
        // Node 0 halts in round 1; its neighbor keeps broadcasting in
        // rounds 1 and 2, so one message (sent in round 1, delivered in
        // round 2) arrives after node 0 halted... actually node 0 halts at
        // round 1 after sending; node 1's round-1 message to node 0 is sent
        // while node 0 is still active but delivered after its halt.
        struct HaltFirst;
        impl Protocol for HaltFirst {
            type Msg = u32;
            type Output = ();
            fn init(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.broadcast(0);
            }
            fn round(&mut self, ctx: &mut Context<'_, u32>, _inbox: &[(Port, u32)]) -> Status<()> {
                if ctx.id().0 == 0 || ctx.round() >= 2 {
                    Status::Halt(())
                } else {
                    ctx.broadcast(1);
                    Status::Active
                }
            }
        }
        let g = generators::path(2);
        let outcome = run_protocol(&g, SimConfig::local(), |_| HaltFirst, 0);
        assert!(outcome.completed);
        assert_eq!(outcome.stats.dropped_messages, 1);
    }

    #[test]
    fn determinism_across_runs() {
        use rand::Rng;
        struct Roll;
        impl Protocol for Roll {
            type Msg = ();
            type Output = u64;
            fn init(&mut self, _ctx: &mut Context<'_, ()>) {}
            fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[(Port, ())]) -> Status<u64> {
                Status::Halt(ctx.rng().random())
            }
        }
        let g = generators::cycle(6);
        let a = run_protocol(&g, SimConfig::local(), |_| Roll, 99);
        let b = run_protocol(&g, SimConfig::local(), |_| Roll, 99);
        let c = run_protocol(&g, SimConfig::local(), |_| Roll, 100);
        let ax: Vec<_> = a.outputs.iter().map(|o| o.unwrap()).collect();
        let bx: Vec<_> = b.outputs.iter().map(|o| o.unwrap()).collect();
        let cx: Vec<_> = c.outputs.iter().map(|o| o.unwrap()).collect();
        assert_eq!(ax, bx);
        assert_ne!(ax, cx);
    }
}
