use congest_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rayon::prelude::*;

use crate::message::bits_for_count;
use crate::rng::node_rng;
use crate::{Context, Message, NodeInfo, Port, Protocol, Status};

/// Simulation configuration: model (bit budget) and safety limits.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Per-message bit budget; `None` simulates the LOCAL model
    /// (unbounded messages). Budget overruns are *recorded*, not fatal —
    /// see [`RunStats::budget_violations`].
    pub bit_budget: Option<usize>,
    /// Hard cap on the number of rounds; nodes still active afterwards
    /// produce `None` outputs and [`RunOutcome::completed`] is false.
    pub max_rounds: usize,
    /// Record every message as a [`MessageTrace`] (memory-hungry; meant
    /// for congestion analyses on small graphs).
    pub record_traces: bool,
}

impl SimConfig {
    /// CONGEST configuration for graph `g`: per-message budget of
    /// `8·(⌈log₂ n⌉ + max(⌈log₂ W⌉, ⌈log₂ n⌉))` bits, the usual reading of
    /// "a constant number of ids and weights per message" with weights
    /// polynomial in `n`.
    pub fn congest_for(g: &Graph) -> Self {
        let id_bits = bits_for_count(g.num_nodes().max(2));
        let weight_bits =
            crate::bits_for_value(g.max_node_weight().max(g.max_edge_weight())).max(id_bits);
        SimConfig {
            bit_budget: Some(8 * (id_bits + weight_bits)),
            max_rounds: 1_000_000,
            record_traces: false,
        }
    }

    /// LOCAL configuration: unbounded message size.
    pub fn local() -> Self {
        SimConfig {
            bit_budget: None,
            max_rounds: 1_000_000,
            record_traces: false,
        }
    }

    /// Returns the configuration with a different round cap.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Returns the configuration with message tracing enabled.
    pub fn with_traces(mut self) -> Self {
        self.record_traces = true;
        self
    }
}

/// One recorded message (requires [`SimConfig::record_traces`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageTrace {
    /// Round in which the message was *sent*.
    pub round: usize,
    /// Sender node.
    pub from: NodeId,
    /// Receiver node.
    pub to: NodeId,
    /// Message size in bits.
    pub bits: usize,
}

/// Aggregate statistics of a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of communication rounds executed (excluding `init`).
    pub rounds: usize,
    /// Total messages sent (including ones dropped at halted receivers).
    pub total_messages: u64,
    /// Largest message observed, in bits.
    pub max_message_bits: usize,
    /// Messages exceeding the configured bit budget.
    pub budget_violations: u64,
    /// Messages whose receiver halted in the sending round or earlier.
    /// Round semantics are order-independent: a message sent in round `r`
    /// is dropped iff its receiver halted in some round `≤ r`, regardless
    /// of the relative node ids of sender and receiver.
    pub dropped_messages: u64,
}

/// Result of running a protocol to completion (or to the round cap).
#[derive(Clone, Debug)]
pub struct RunOutcome<O> {
    /// Per-node outputs; `None` for nodes still active when the round cap
    /// was reached.
    pub outputs: Vec<Option<O>>,
    /// Aggregate statistics.
    pub stats: RunStats,
    /// Whether every node halted before the round cap.
    pub completed: bool,
    /// Message traces, if [`SimConfig::record_traces`] was set.
    pub traces: Vec<MessageTrace>,
}

impl<O> RunOutcome<O> {
    /// Unwraps all outputs, panicking if any node failed to halt.
    ///
    /// ```
    /// use congest_graph::generators;
    /// use congest_sim::{run_protocol, Context, Protocol, SimConfig, Status};
    ///
    /// struct MyId;
    /// impl Protocol for MyId {
    ///     type Msg = ();
    ///     type Output = u32;
    ///     fn init(&mut self, _ctx: &mut Context<'_, ()>) {}
    ///     fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[(usize, ())])
    ///         -> Status<u32>
    ///     {
    ///         Status::Halt(ctx.id().0)
    ///     }
    /// }
    ///
    /// let outcome = run_protocol(&generators::cycle(3), SimConfig::local(), |_| MyId, 0);
    /// assert_eq!(outcome.into_outputs(), vec![0, 1, 2]);
    /// ```
    ///
    /// # Panics
    /// Panics if the run did not complete.
    pub fn into_outputs(self) -> Vec<O> {
        assert!(
            self.completed,
            "run hit the round cap before all nodes halted"
        );
        self.outputs
            .into_iter()
            .map(|o| o.expect("completed runs have all outputs"))
            .collect()
    }
}

/// Everything one node owns during a run: its protocol instance, static
/// info, private RNG, and this round's message buffers.
///
/// Bundling the per-node state lets a synchronous round be executed as a
/// *compute phase* (each slot stepped independently — sequentially or in
/// parallel) followed by a *delivery phase* (halts applied, outboxes
/// moved into inboxes, in ascending node order), which is what makes the
/// round semantics independent of node processing order.
struct NodeSlot<'g, P: Protocol> {
    proto: P,
    info: NodeInfo<'g>,
    /// `reverse_port[p]` = the port at `neighbor(p)` that leads back to
    /// this node; used to deliver into the receiver's port-indexed inbox.
    /// Borrowed straight from the graph's precomputed CSR table.
    reverse_port: &'g [u32],
    rng: SmallRng,
    inbox: Vec<(Port, P::Msg)>,
    outbox: Vec<Option<P::Msg>>,
    /// Output produced this round, if the node chose to halt; applied to
    /// `active` only at the delivery phase so that drop decisions cannot
    /// observe a half-updated round.
    pending_halt: Option<P::Output>,
    active: bool,
}

/// Runs one [`Protocol`] instance per node of a graph.
///
/// Build with [`Engine::build`], execute with [`Engine::run`] (or
/// [`Engine::run_parallel`], which produces bit-identical results using
/// one worker per hardware thread). See the crate-level docs for an
/// end-to-end example.
///
/// # Round semantics
///
/// Each synchronous round has two phases:
///
/// 1. **Compute** — every active node's [`Protocol::round`] runs against
///    the messages sent to it in the previous round, filling its outbox
///    and possibly deciding to halt. Nodes cannot observe each other
///    mid-round, so the execution order (including parallel execution)
///    cannot affect results.
/// 2. **Deliver** — halts are applied, then every outbox is moved into
///    the receivers' inboxes in ascending sender order. A message is
///    dropped (counted in [`RunStats::dropped_messages`]) iff its
///    receiver halted in the sending round or earlier.
pub struct Engine<'g, P: Protocol> {
    graph: &'g Graph,
    config: SimConfig,
    infos: Vec<NodeInfo<'g>>,
    nodes: Vec<P>,
}

impl<'g, P: Protocol> Engine<'g, P> {
    /// Creates an engine, instantiating the protocol at every node via
    /// `factory` (called in ascending node-id order).
    ///
    /// Zero-copy: each [`NodeInfo`] borrows its per-port slices straight
    /// out of the graph's CSR block, and the reverse-port table was already
    /// computed by the graph in `O(n + m)`, so building the engine
    /// allocates `O(n)` — independent of the number of edges — and
    /// parallel rounds share one read-only adjacency image.
    pub fn build(
        graph: &'g Graph,
        config: SimConfig,
        mut factory: impl FnMut(&NodeInfo<'g>) -> P,
    ) -> Self {
        let n = graph.num_nodes();
        let max_degree = graph.max_degree();
        let max_node_weight = graph.max_node_weight();
        let max_edge_weight = graph.max_edge_weight();
        let mut infos = Vec::with_capacity(n);
        for v in graph.nodes() {
            infos.push(NodeInfo {
                id: v,
                weight: graph.node_weight(v),
                neighbor_ids: graph.neighbor_ids(v),
                edge_weights: graph.port_edge_weights(v),
                n,
                max_degree,
                max_node_weight,
                max_edge_weight,
            });
        }
        let nodes = infos.iter().map(&mut factory).collect();
        Engine {
            graph,
            config,
            infos,
            nodes,
        }
    }

    /// Runs the protocol to completion (all nodes halted) or to the round
    /// cap, using `seed` to derive every node's private RNG.
    pub fn run(self, seed: u64) -> RunOutcome<P::Output> {
        self.run_with(seed, |slots, round| {
            for slot in slots.iter_mut() {
                Self::step(slot, round);
            }
        })
    }

    /// Like [`run`](Engine::run), but executes each round's compute phase
    /// on all hardware threads.
    ///
    /// Outputs, statistics, and traces are bit-identical to the
    /// sequential path for the same `seed`: every node steps against its
    /// own private [`SmallRng`] and per-round buffers (no cross-node
    /// state), and message delivery stays sequential in ascending node
    /// order.
    pub fn run_parallel(self, seed: u64) -> RunOutcome<P::Output>
    where
        P: Send,
        P::Msg: Send,
        P::Output: Send,
    {
        let threads = rayon::current_num_threads().max(1);
        self.run_with(seed, move |slots, round| {
            let chunk = slots.len().div_ceil(threads).max(1);
            slots.par_chunks_mut(chunk).for_each(|chunk| {
                for slot in chunk.iter_mut() {
                    Self::step(slot, round);
                }
            });
        })
    }

    /// Shared run loop; `compute` executes one round's compute phase over
    /// all slots (round 0 is `init`).
    fn run_with(
        self,
        seed: u64,
        compute: impl Fn(&mut [NodeSlot<'g, P>], usize),
    ) -> RunOutcome<P::Output> {
        let n = self.graph.num_nodes();
        let graph = self.graph;
        let config = self.config;
        let mut slots: Vec<NodeSlot<'g, P>> = self
            .nodes
            .into_iter()
            .zip(self.infos)
            .map(|(proto, info)| NodeSlot {
                rng: node_rng(seed, info.id),
                proto,
                reverse_port: graph.reverse_ports(info.id),
                info,
                inbox: Vec::new(),
                outbox: Vec::new(),
                pending_halt: None,
                active: true,
            })
            .collect();
        let mut outputs: Vec<Option<P::Output>> = vec![None; n];
        let mut active_count = n;
        let mut stats = RunStats::default();
        let mut traces = Vec::new();

        // Round 0: init (no inboxes yet, halting is not possible).
        compute(&mut slots, 0);
        Self::deliver(
            &config,
            &mut slots,
            &mut outputs,
            &mut active_count,
            &mut stats,
            &mut traces,
            0,
        );

        while active_count > 0 && stats.rounds < config.max_rounds {
            stats.rounds += 1;
            let round = stats.rounds;
            compute(&mut slots, round);
            Self::deliver(
                &config,
                &mut slots,
                &mut outputs,
                &mut active_count,
                &mut stats,
                &mut traces,
                round,
            );
        }

        RunOutcome {
            outputs,
            stats,
            completed: active_count == 0,
            traces,
        }
    }

    /// Compute phase for one node: sort the inbox by port, run `init`
    /// (round 0) or `round`, and stash any halt decision in
    /// [`NodeSlot::pending_halt`]. Touches nothing outside the slot.
    fn step(slot: &mut NodeSlot<'g, P>, round: usize) {
        if !slot.active {
            return;
        }
        slot.inbox.sort_unstable_by_key(|&(p, _)| p);
        slot.outbox.clear();
        slot.outbox.resize(slot.info.degree(), None);
        let NodeSlot {
            proto,
            info,
            rng,
            inbox,
            outbox,
            pending_halt,
            ..
        } = slot;
        let mut ctx = Context {
            info,
            rng,
            round,
            outbox,
        };
        if round == 0 {
            proto.init(&mut ctx);
        } else if let Status::Halt(out) = proto.round(&mut ctx, inbox) {
            *pending_halt = Some(out);
        }
        slot.inbox.clear();
    }

    /// Delivery phase: apply this round's halts, then move every outbox
    /// into the receivers' inboxes (ascending sender order), updating
    /// statistics. Runs after *all* nodes computed, so whether a message
    /// is dropped depends only on the set of halted nodes — never on node
    /// processing order.
    fn deliver(
        config: &SimConfig,
        slots: &mut [NodeSlot<'g, P>],
        outputs: &mut [Option<P::Output>],
        active_count: &mut usize,
        stats: &mut RunStats,
        traces: &mut Vec<MessageTrace>,
        round: usize,
    ) {
        for (v, slot) in slots.iter_mut().enumerate() {
            if let Some(out) = slot.pending_halt.take() {
                debug_assert!(slot.active, "inactive nodes are never stepped");
                outputs[v] = Some(out);
                slot.active = false;
                *active_count -= 1;
            }
        }
        for v in 0..slots.len() {
            // Detach the outbox so the receiver slot can be borrowed.
            let mut outbox = std::mem::take(&mut slots[v].outbox);
            for (port, slot_msg) in outbox.iter_mut().enumerate() {
                let Some(msg) = slot_msg.take() else { continue };
                let bits = msg.bit_size();
                stats.total_messages += 1;
                stats.max_message_bits = stats.max_message_bits.max(bits);
                if let Some(budget) = config.bit_budget {
                    if bits > budget {
                        stats.budget_violations += 1;
                    }
                }
                let to = slots[v].info.neighbor_ids[port].index();
                if config.record_traces {
                    traces.push(MessageTrace {
                        round,
                        from: slots[v].info.id,
                        to: slots[to].info.id,
                        bits,
                    });
                }
                if slots[to].active {
                    let back = slots[v].reverse_port[port] as Port;
                    slots[to].inbox.push((back, msg));
                } else {
                    stats.dropped_messages += 1;
                }
            }
            slots[v].outbox = outbox;
        }
    }
}

/// Convenience wrapper: build and run in one call.
///
/// ```
/// use congest_graph::generators;
/// use congest_sim::{run_protocol, Context, Protocol, SimConfig, Status};
///
/// struct Degree;
/// impl Protocol for Degree {
///     type Msg = ();
///     type Output = usize;
///     fn init(&mut self, _ctx: &mut Context<'_, ()>) {}
///     fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[(usize, ())])
///         -> Status<usize>
///     {
///         Status::Halt(ctx.degree())
///     }
/// }
///
/// let g = generators::star(5);
/// let outcome = run_protocol(&g, SimConfig::local(), |_| Degree, 1);
/// assert_eq!(outcome.outputs[0], Some(4));
/// ```
pub fn run_protocol<'g, P: Protocol>(
    graph: &'g Graph,
    config: SimConfig,
    factory: impl FnMut(&NodeInfo<'g>) -> P,
    seed: u64,
) -> RunOutcome<P::Output> {
    Engine::build(graph, config, factory).run(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Each node halts immediately, outputting its degree.
    struct InstantHalt;
    impl Protocol for InstantHalt {
        type Msg = ();
        type Output = usize;
        fn init(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[(Port, ())]) -> Status<usize> {
            Status::Halt(ctx.degree())
        }
    }

    /// Echoes its id to all neighbors each round; halts after collecting
    /// all neighbor ids (which takes exactly one exchange).
    struct Census {
        heard: Vec<NodeId>,
    }
    impl Protocol for Census {
        type Msg = u32;
        type Output = Vec<NodeId>;
        fn init(&mut self, ctx: &mut Context<'_, u32>) {
            let id = ctx.id().0;
            ctx.broadcast(id);
        }
        fn round(
            &mut self,
            _ctx: &mut Context<'_, u32>,
            inbox: &[(Port, u32)],
        ) -> Status<Vec<NodeId>> {
            for &(_, id) in inbox {
                self.heard.push(NodeId(id));
            }
            self.heard.sort_unstable();
            Status::Halt(self.heard.clone())
        }
    }

    #[test]
    fn instant_halt_runs_one_round() {
        let g = generators::cycle(5);
        let outcome = run_protocol(&g, SimConfig::local(), |_| InstantHalt, 0);
        assert!(outcome.completed);
        assert_eq!(outcome.stats.rounds, 1);
        assert_eq!(outcome.stats.total_messages, 0);
        assert!(outcome.outputs.iter().all(|o| *o == Some(2)));
    }

    #[test]
    fn census_learns_neighbor_ids() {
        let g = generators::star(4);
        let outcome = run_protocol(
            &g,
            SimConfig::congest_for(&g),
            |_| Census { heard: Vec::new() },
            7,
        );
        assert!(outcome.completed);
        let outputs = outcome.outputs;
        assert_eq!(
            outputs[0].as_ref().unwrap(),
            &vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        for leaf in outputs.iter().skip(1) {
            assert_eq!(leaf.as_ref().unwrap(), &vec![NodeId(0)]);
        }
    }

    #[test]
    fn message_stats_counted() {
        let g = generators::complete(4);
        let outcome = run_protocol(
            &g,
            SimConfig::congest_for(&g),
            |_| Census { heard: Vec::new() },
            7,
        );
        // Every node broadcasts once at init: 4 nodes × 3 ports.
        assert_eq!(outcome.stats.total_messages, 12);
        assert_eq!(outcome.stats.budget_violations, 0);
        assert!(outcome.stats.max_message_bits >= 1);
    }

    /// Broadcasts the sender id, then asserts every message arrived on the
    /// port whose neighbor is that sender — i.e. the delivery path resolved
    /// reverse ports exactly as the old per-edge `position()` scan did.
    struct PortEcho;
    impl Protocol for PortEcho {
        type Msg = u32;
        type Output = ();
        fn init(&mut self, ctx: &mut Context<'_, u32>) {
            let id = ctx.id().0;
            ctx.broadcast(id);
        }
        fn round(&mut self, ctx: &mut Context<'_, u32>, inbox: &[(Port, u32)]) -> Status<()> {
            assert_eq!(inbox.len(), ctx.degree());
            for &(port, id) in inbox {
                assert_eq!(ctx.neighbor(port), NodeId(id));
            }
            Status::Halt(())
        }
    }

    /// Regression for the reverse-port table: `complete(512)` was the
    /// worst case of the old `O(Σ deg²)` construction in `Engine::build`;
    /// the engine now borrows the graph's `O(n + m)` table and must route
    /// every one of the 512·511 messages to the same port as before.
    #[test]
    fn delivery_ports_match_position_scan_on_complete_512() {
        let g = generators::complete(512);
        let outcome = run_protocol(&g, SimConfig::local(), |_| PortEcho, 0);
        assert!(outcome.completed);
        assert_eq!(outcome.stats.total_messages, 512 * 511);
    }

    /// A protocol that never halts, to exercise the round cap.
    struct Forever;
    impl Protocol for Forever {
        type Msg = ();
        type Output = ();
        fn init(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn round(&mut self, _ctx: &mut Context<'_, ()>, _inbox: &[(Port, ())]) -> Status<()> {
            Status::Active
        }
    }

    #[test]
    fn round_cap_respected() {
        let g = generators::path(3);
        let outcome = run_protocol(&g, SimConfig::local().with_max_rounds(10), |_| Forever, 0);
        assert!(!outcome.completed);
        assert_eq!(outcome.stats.rounds, 10);
        assert!(outcome.outputs.iter().all(Option::is_none));
    }

    #[test]
    fn traces_record_messages() {
        let g = generators::path(2);
        let outcome = run_protocol(
            &g,
            SimConfig::local().with_traces(),
            |_| Census { heard: Vec::new() },
            3,
        );
        assert_eq!(outcome.traces.len(), 2);
        assert_eq!(outcome.traces[0].round, 0);
        assert_eq!(outcome.traces[0].from, NodeId(0));
        assert_eq!(outcome.traces[0].to, NodeId(1));
    }

    /// One designated node halts in round 1; the other keeps broadcasting
    /// through round 2. The broadcaster's round-1 message reaches a node
    /// that halted in round 1, so exactly that one message must be
    /// dropped — whichever of the two ids halts.
    struct HaltOne {
        halter: u32,
    }
    impl Protocol for HaltOne {
        type Msg = u32;
        type Output = ();
        fn init(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.broadcast(0);
        }
        fn round(&mut self, ctx: &mut Context<'_, u32>, _inbox: &[(Port, u32)]) -> Status<()> {
            if ctx.id().0 == self.halter || ctx.round() >= 2 {
                Status::Halt(())
            } else {
                ctx.broadcast(1);
                Status::Active
            }
        }
    }

    #[test]
    fn messages_to_halted_nodes_are_dropped() {
        // Timeline on the path 0–1 (halter = node h, sender = the other
        // node s):
        //   init:    both broadcast; both messages delivered in round 1.
        //   round 1: h halts; s broadcasts and stays active. s's message
        //            is *sent* in h's halting round → dropped.
        //   round 2: s (empty inbox) halts.
        for halter in [0u32, 1] {
            let g = generators::path(2);
            let outcome = run_protocol(&g, SimConfig::local(), |_| HaltOne { halter }, 0);
            assert!(outcome.completed);
            assert_eq!(outcome.stats.rounds, 2);
            assert_eq!(outcome.stats.total_messages, 3);
            assert_eq!(
                outcome.stats.dropped_messages, 1,
                "drop accounting must not depend on whether the halter's \
                 id is smaller (halter = {halter})"
            );
        }
    }

    #[test]
    fn drop_semantics_do_not_depend_on_node_order() {
        // Stronger variant on a star: the center halts in round 1 while
        // every leaf (ids both above and below the center's would-be
        // position) broadcasts in round 1. All leaf messages sent in
        // round 1 target the halted center and must be dropped; count is
        // the same no matter which node is the halter.
        let g = generators::star(5);
        let center = run_protocol(&g, SimConfig::local(), |_| HaltOne { halter: 0 }, 0);
        assert_eq!(center.stats.dropped_messages, 4);
        let leaf = run_protocol(&g, SimConfig::local(), |_| HaltOne { halter: 3 }, 0);
        // Only the center neighbors the halting leaf, so exactly its
        // round-1 message to the leaf is dropped.
        assert_eq!(leaf.stats.dropped_messages, 1);
    }

    /// The CONGEST budget is `8·(id_bits + weight_bits)`; both summands
    /// are ceil-log terms, so the budget must never shrink as the graph
    /// grows in `n` or its weights grow toward `W`.
    #[test]
    fn congest_budget_is_monotone_in_n_and_w() {
        let mut prev = 0;
        for n in [1usize, 2, 3, 16, 17, 100, 1_000, 10_000] {
            let g = generators::path(n);
            let budget = SimConfig::congest_for(&g).bit_budget.unwrap();
            assert!(budget >= prev, "budget shrank going to n = {n}");
            prev = budget;
        }
        let mut prev = 0;
        for w in [1u64, 2, 3, 255, 256, 1 << 20, 1 << 40, u64::MAX] {
            let mut g = generators::path(50);
            g.set_node_weight(NodeId(0), w);
            let budget = SimConfig::congest_for(&g).bit_budget.unwrap();
            assert!(budget >= prev, "budget shrank going to W = {w}");
            prev = budget;
        }
        // Edge weights feed the same W term as node weights.
        let mut g = generators::path(50);
        let small = SimConfig::congest_for(&g).bit_budget.unwrap();
        g.set_edge_weight(congest_graph::EdgeId(0), u64::MAX);
        let large = SimConfig::congest_for(&g).bit_budget.unwrap();
        assert!(large > small);
    }

    #[test]
    fn determinism_across_runs() {
        struct Roll;
        impl Protocol for Roll {
            type Msg = ();
            type Output = u64;
            fn init(&mut self, _ctx: &mut Context<'_, ()>) {}
            fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[(Port, ())]) -> Status<u64> {
                Status::Halt(ctx.rng().random())
            }
        }
        let g = generators::cycle(6);
        let a = run_protocol(&g, SimConfig::local(), |_| Roll, 99);
        let b = run_protocol(&g, SimConfig::local(), |_| Roll, 99);
        let c = run_protocol(&g, SimConfig::local(), |_| Roll, 100);
        let ax: Vec<_> = a.outputs.iter().map(|o| o.unwrap()).collect();
        let bx: Vec<_> = b.outputs.iter().map(|o| o.unwrap()).collect();
        let cx: Vec<_> = c.outputs.iter().map(|o| o.unwrap()).collect();
        assert_eq!(ax, bx);
        assert_ne!(ax, cx);
    }

    /// Message-heavy randomized protocol with staggered halts, used to
    /// pit the sequential and parallel executors against each other:
    /// every node draws a private deadline, then gossips random values,
    /// folding everything it hears into a running hash.
    struct RandomGossip {
        deadline: usize,
        acc: u64,
    }
    impl Protocol for RandomGossip {
        type Msg = u64;
        type Output = u64;
        fn init(&mut self, ctx: &mut Context<'_, u64>) {
            self.deadline = ctx.rng().random_range(1..=8);
            let roll: u64 = ctx.rng().random();
            self.acc = roll;
            ctx.broadcast(roll & 0xFFFF);
        }
        fn round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[(Port, u64)]) -> Status<u64> {
            for &(port, m) in inbox {
                self.acc = self
                    .acc
                    .rotate_left(7)
                    .wrapping_add(m)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ port as u64;
            }
            if ctx.round() >= self.deadline {
                Status::Halt(self.acc)
            } else {
                let roll: u64 = ctx.rng().random();
                ctx.broadcast(roll & 0xFFFF);
                Status::Active
            }
        }
    }

    fn gossip() -> RandomGossip {
        RandomGossip {
            deadline: 0,
            acc: 0,
        }
    }

    /// FNV-1a over every output, statistic, and trace of a run — a compact
    /// fingerprint of the engine's externally observable behavior.
    fn outcome_hash(out: &RunOutcome<u64>) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100000001b3);
        };
        for o in &out.outputs {
            mix(o.unwrap());
        }
        mix(out.stats.rounds as u64);
        mix(out.stats.total_messages);
        mix(out.stats.max_message_bits as u64);
        mix(out.stats.budget_violations);
        mix(out.stats.dropped_messages);
        for t in &out.traces {
            mix(t.round as u64);
            mix(t.from.0 as u64);
            mix(t.to.0 as u64);
            mix(t.bits as u64);
        }
        h
    }

    #[test]
    fn run_parallel_is_bit_identical_to_run_on_gnp_1000() {
        let mut rng = SmallRng::seed_from_u64(2024);
        let g = generators::gnp(1000, 0.008, &mut rng);
        let config = SimConfig::congest_for(&g).with_traces();
        // Fingerprints recorded on the pre-CSR engine (PR 2's
        // `Vec<Vec<…>>` adjacency with per-`NodeInfo` clones): the layout
        // refactor must not change a single output, statistic, or trace.
        let recorded = [(1u64, 0x8a05ed62888b4b60u64), (77, 0x8c6e3fc93615c0c9)];
        for (seed, expected) in recorded {
            let seq = Engine::build(&g, config.clone(), |_| gossip()).run(seed);
            let par = Engine::build(&g, config.clone(), |_| gossip()).run_parallel(seed);
            assert!(seq.completed && par.completed);
            assert_eq!(seq.outputs, par.outputs);
            assert_eq!(seq.stats, par.stats);
            assert_eq!(seq.traces, par.traces);
            assert_eq!(
                outcome_hash(&seq),
                expected,
                "seed {seed}: outputs/stats/traces diverged from the \
                 pre-refactor engine"
            );
            // The staggered deadlines make some messages arrive at halted
            // nodes, so the run exercises the drop path it certifies.
            assert!(seq.stats.dropped_messages > 0);
            assert!(seq.stats.total_messages > 1000);
        }
    }

    #[test]
    fn run_parallel_matches_run_on_tiny_and_empty_graphs() {
        for g in [
            generators::path(1),
            generators::path(2),
            generators::complete(9),
        ] {
            let seq = Engine::build(&g, SimConfig::local(), |_| gossip()).run(5);
            let par = Engine::build(&g, SimConfig::local(), |_| gossip()).run_parallel(5);
            assert_eq!(seq.outputs, par.outputs);
            assert_eq!(seq.stats, par.stats);
        }
    }
}
