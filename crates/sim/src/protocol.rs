use std::fmt::Debug;

use congest_graph::NodeId;

use crate::{Context, Inbox, PackedMsg};

/// A port: the local index of an incident edge at a node (`0..degree`).
///
/// Ports are how nodes address their neighbors — a node does not know the
/// global topology, only that "port 3 leads to some neighbor" (whose id and
/// edge weight it does learn, as is standard in CONGEST where ids fit in a
/// single message).
pub type Port = usize;

/// Immutable per-node information available to a protocol.
///
/// Everything here is knowledge a CONGEST node legitimately has after at
/// most one communication round: its own id/weight/degree, its neighbors'
/// ids and the weights of its incident edges (exchanged in one round), and
/// the global parameters `n`, `Δ` and `W` that the paper's algorithms
/// assume are common knowledge.
///
/// # Zero-copy contract
///
/// The per-port slices are *borrowed views* into the graph's flat CSR
/// adjacency block (see [`congest_graph::Graph`]) — building a `NodeInfo`
/// copies two fat pointers, never the adjacency itself, which is what lets
/// [`Engine::build`](crate::Engine::build) allocate `O(n)` for a run and
/// lets parallel rounds share one read-only adjacency image. The borrow
/// lives as long as the graph borrow `'g` the engine was built from: a
/// protocol may freely hold onto `neighbor_ids` / `edge_weights` (or a
/// whole copied `NodeInfo`, which is `Copy`) across rounds, but must copy
/// anything it wants to own beyond the run. The graph is immutable for the
/// whole run, so the views never dangle or change mid-run.
#[derive(Copy, Clone, Debug)]
pub struct NodeInfo<'g> {
    /// This node's globally unique id.
    pub id: NodeId,
    /// This node's weight.
    pub weight: u64,
    /// Neighbor id reachable through each port (sorted ascending).
    pub neighbor_ids: &'g [NodeId],
    /// Weight of the incident edge at each port.
    pub edge_weights: &'g [u64],
    /// Total number of nodes `n`.
    pub n: usize,
    /// Maximum degree `Δ` of the graph.
    pub max_degree: usize,
    /// Maximum node weight `W` in the graph.
    pub max_node_weight: u64,
    /// Maximum edge weight in the graph.
    pub max_edge_weight: u64,
}

impl NodeInfo<'_> {
    /// Degree of this node.
    #[inline]
    pub fn degree(&self) -> usize {
        self.neighbor_ids.len()
    }
}

/// Outcome of a protocol round at one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Status<O> {
    /// Keep participating in future rounds.
    Active,
    /// Stop; `O` is this node's final output. Messages sent in the halting
    /// round are still delivered to neighbors in the next round.
    Halt(O),
}

impl<O> Status<O> {
    /// Whether this is [`Status::Halt`].
    pub fn is_halt(&self) -> bool {
        matches!(self, Status::Halt(_))
    }
}

/// The per-node algorithm run by the [`Engine`](crate::Engine).
///
/// One instance of the implementing type is created per node (via the
/// factory closure passed to [`Engine::build`](crate::Engine::build)). The
/// engine calls [`init`](Protocol::init) once before any communication,
/// then [`round`](Protocol::round) every synchronous round with the
/// messages sent by neighbors in the previous round.
pub trait Protocol {
    /// Message type exchanged by this protocol. The [`PackedMsg`] bound is
    /// the CONGEST discipline made structural: every message must state a
    /// ≤ 64-bit wire format, because the engine's planes store exactly one
    /// packed word per directed edge.
    type Msg: PackedMsg;
    /// Per-node output on halting.
    type Output: Clone + Debug;

    /// Round 0: inspect [`Context`], initialize state, optionally send.
    fn init(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// One synchronous round: `inbox` is a port-indexed view of the
    /// messages neighbors sent in the previous round (iteration is in
    /// ascending port order by construction — see [`Inbox`]). Return
    /// [`Status::Halt`] to stop participating.
    fn round(
        &mut self,
        ctx: &mut Context<'_, Self::Msg>,
        inbox: Inbox<'_, Self::Msg>,
    ) -> Status<Self::Output>;
}
