use std::fmt::Debug;

/// A message exchanged between neighboring nodes.
///
/// Besides being cloneable (the engine duplicates broadcasts), messages
/// report their size in bits so the engine can meter the CONGEST budget.
/// Sizes should reflect the *information content* an actual implementation
/// would transmit — e.g. a node weight in `[1, W]` costs
/// `⌈log₂(W+1)⌉` bits ([`bits_for_value`]), not the 64 bits of its `u64`
/// in-memory representation.
pub trait Message: Clone + Debug {
    /// Size of this message in bits, for CONGEST accounting.
    fn bit_size(&self) -> usize;

    /// How a corruption fault garbles this payload in flight.
    ///
    /// When the [`Adversary`](crate::Adversary)'s corruption coin fires,
    /// the engine calls this with a deterministic `entropy` word.
    /// Returning `Some(mutated)` delivers the garbled value to the
    /// receiver; returning `None` — the default — models a transport
    /// whose checksum catches the garbled frame and discards it (the
    /// corruption then behaves like a drop). Either way the event counts
    /// in [`RunStats::corrupted_messages`](crate::RunStats::corrupted_messages).
    ///
    /// Implementations must be pure in `(self, entropy)` so fault
    /// schedules replay identically in `run` and `run_parallel`.
    fn corrupted(&self, entropy: u64) -> Option<Self> {
        let _ = entropy;
        None
    }
}

/// Number of bits needed to write the value `x` in binary (`0 → 1`).
///
/// ```
/// use congest_sim::bits_for_value;
/// assert_eq!(bits_for_value(0), 1);
/// assert_eq!(bits_for_value(1), 1);
/// assert_eq!(bits_for_value(255), 8);
/// assert_eq!(bits_for_value(256), 9);
/// ```
pub fn bits_for_value(x: u64) -> usize {
    (64 - x.leading_zeros()).max(1) as usize
}

/// Number of bits needed to index into a domain of `count` values
/// (`⌈log₂ count⌉`, with a minimum of 1).
///
/// ```
/// use congest_sim::bits_for_count;
/// assert_eq!(bits_for_count(1), 1);
/// assert_eq!(bits_for_count(2), 1);
/// assert_eq!(bits_for_count(1024), 10);
/// assert_eq!(bits_for_count(1025), 11);
/// ```
pub fn bits_for_count(count: usize) -> usize {
    if count <= 2 {
        1
    } else {
        (usize::BITS - (count - 1).leading_zeros()) as usize
    }
}

impl Message for () {
    fn bit_size(&self) -> usize {
        0
    }
}

impl Message for bool {
    fn bit_size(&self) -> usize {
        1
    }
}

impl Message for u32 {
    fn bit_size(&self) -> usize {
        bits_for_value(u64::from(*self))
    }

    /// Raw integer payloads have no checksum to hide behind: corruption
    /// surfaces as a single flipped bit at an entropy-chosen position.
    fn corrupted(&self, entropy: u64) -> Option<Self> {
        Some(self ^ (1u32 << (entropy % 32)))
    }
}

impl Message for u64 {
    fn bit_size(&self) -> usize {
        bits_for_value(*self)
    }

    /// Raw integer payloads have no checksum to hide behind: corruption
    /// surfaces as a single flipped bit at an entropy-chosen position.
    fn corrupted(&self, entropy: u64) -> Option<Self> {
        Some(self ^ (1u64 << (entropy % 64)))
    }
}

impl Message for f64 {
    /// Floating-point payloads are charged 64 bits. Protocols with a
    /// documented lower precision (e.g. the `O(log Δ / ε²)`-bit attenuation
    /// values of Appendix B.3) should wrap the value in their own message
    /// type and report the documented width.
    fn bit_size(&self) -> usize {
        64
    }
}

impl<T: Message> Message for Option<T> {
    fn bit_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Message::bit_size)
    }
}

impl<A: Message, B: Message> Message for (A, B) {
    fn bit_size(&self) -> usize {
        self.0.bit_size() + self.1.bit_size()
    }
}

impl<A: Message, B: Message, C: Message> Message for (A, B, C) {
    fn bit_size(&self) -> usize {
        self.0.bit_size() + self.1.bit_size() + self.2.bit_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_bits() {
        assert_eq!(bits_for_value(0), 1);
        assert_eq!(bits_for_value(7), 3);
        assert_eq!(bits_for_value(8), 4);
        assert_eq!(bits_for_value(u64::MAX), 64);
    }

    #[test]
    fn count_bits() {
        assert_eq!(bits_for_count(1), 1);
        assert_eq!(bits_for_count(3), 2);
        assert_eq!(bits_for_count(4), 2);
        assert_eq!(bits_for_count(5), 3);
    }

    /// Boundary cases: the degenerate inputs 0 and 1 (both clamp to one
    /// bit) and exact powers of two, where off-by-one errors in the
    /// `count - 1` / `leading_zeros` arithmetic would show first.
    #[test]
    fn value_bits_boundaries() {
        assert_eq!(bits_for_value(0), 1);
        assert_eq!(bits_for_value(1), 1);
        for k in 1..63u32 {
            let pow = 1u64 << k;
            // 2^k needs k+1 bits; 2^k − 1 needs k bits.
            assert_eq!(bits_for_value(pow), k as usize + 1, "value 2^{k}");
            assert_eq!(bits_for_value(pow - 1), k as usize, "value 2^{k} - 1");
        }
        assert_eq!(bits_for_value(u64::MAX), 64);
    }

    #[test]
    fn count_bits_boundaries() {
        // Degenerate domains still need one bit to index.
        assert_eq!(bits_for_count(0), 1);
        assert_eq!(bits_for_count(1), 1);
        assert_eq!(bits_for_count(2), 1);
        for k in 1..32u32 {
            let pow = 1usize << k;
            // A domain of exactly 2^k values needs k bits; one more value
            // tips it to k+1.
            assert_eq!(bits_for_count(pow), k as usize, "count 2^{k}");
            assert_eq!(bits_for_count(pow + 1), k as usize + 1, "count 2^{k} + 1");
        }
    }

    #[test]
    fn bits_are_monotone() {
        let mut prev = 0;
        for x in 0..4096u64 {
            let b = bits_for_value(x);
            assert!(b >= prev);
            prev = b;
        }
        let mut prev = 0;
        for c in 0..4096usize {
            let b = bits_for_count(c);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn corruption_flips_one_bit_on_raw_integers_and_discards_elsewhere() {
        // Structured payloads default to checksum-discard…
        assert_eq!(true.corrupted(5), None);
        assert_eq!(Some(7u64).corrupted(5), None);
        assert_eq!(().corrupted(5), None);
        // …raw integers flip exactly one entropy-chosen bit, purely.
        let x = 0b1010_1100u64;
        let y = x.corrupted(3).unwrap();
        assert_eq!((x ^ y).count_ones(), 1);
        assert_eq!(x.corrupted(3), x.corrupted(3));
        assert_ne!(x.corrupted(0), x.corrupted(1));
        let z = 7u32.corrupted(40).unwrap();
        assert_eq!((7u32 ^ z).count_ones(), 1);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!(().bit_size(), 0);
        assert_eq!(true.bit_size(), 1);
        assert_eq!(5u64.bit_size(), 3);
        assert_eq!(Some(5u64).bit_size(), 4);
        assert_eq!(None::<u64>.bit_size(), 1);
        assert_eq!((true, 5u64).bit_size(), 4);
        assert_eq!((true, 5u64, 2u32).bit_size(), 6);
    }
}
