use std::fmt::Debug;

/// A message exchanged between neighboring nodes.
///
/// Besides being cloneable (the engine duplicates broadcasts), messages
/// report their size in bits so the engine can meter the CONGEST budget.
/// Sizes should reflect the *information content* an actual implementation
/// would transmit — e.g. a node weight in `[1, W]` costs
/// `⌈log₂(W+1)⌉` bits ([`bits_for_value`]), not the 64 bits of its `u64`
/// in-memory representation.
pub trait Message: Clone + Debug {
    /// Size of this message in bits, for CONGEST accounting.
    fn bit_size(&self) -> usize;
}

/// Number of bits needed to write the value `x` in binary (`0 → 1`).
///
/// ```
/// use congest_sim::bits_for_value;
/// assert_eq!(bits_for_value(0), 1);
/// assert_eq!(bits_for_value(1), 1);
/// assert_eq!(bits_for_value(255), 8);
/// assert_eq!(bits_for_value(256), 9);
/// ```
pub fn bits_for_value(x: u64) -> usize {
    (64 - x.leading_zeros()).max(1) as usize
}

/// Number of bits needed to index into a domain of `count` values
/// (`⌈log₂ count⌉`, with a minimum of 1).
///
/// ```
/// use congest_sim::bits_for_count;
/// assert_eq!(bits_for_count(1), 1);
/// assert_eq!(bits_for_count(2), 1);
/// assert_eq!(bits_for_count(1024), 10);
/// assert_eq!(bits_for_count(1025), 11);
/// ```
pub fn bits_for_count(count: usize) -> usize {
    if count <= 2 {
        1
    } else {
        (usize::BITS - (count - 1).leading_zeros()) as usize
    }
}

impl Message for () {
    fn bit_size(&self) -> usize {
        0
    }
}

impl Message for bool {
    fn bit_size(&self) -> usize {
        1
    }
}

impl Message for u32 {
    fn bit_size(&self) -> usize {
        bits_for_value(u64::from(*self))
    }
}

impl Message for u64 {
    fn bit_size(&self) -> usize {
        bits_for_value(*self)
    }
}

impl Message for f64 {
    /// Floating-point payloads are charged 64 bits. Protocols with a
    /// documented lower precision (e.g. the `O(log Δ / ε²)`-bit attenuation
    /// values of Appendix B.3) should wrap the value in their own message
    /// type and report the documented width.
    fn bit_size(&self) -> usize {
        64
    }
}

impl<T: Message> Message for Option<T> {
    fn bit_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Message::bit_size)
    }
}

impl<A: Message, B: Message> Message for (A, B) {
    fn bit_size(&self) -> usize {
        self.0.bit_size() + self.1.bit_size()
    }
}

impl<A: Message, B: Message, C: Message> Message for (A, B, C) {
    fn bit_size(&self) -> usize {
        self.0.bit_size() + self.1.bit_size() + self.2.bit_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_bits() {
        assert_eq!(bits_for_value(0), 1);
        assert_eq!(bits_for_value(7), 3);
        assert_eq!(bits_for_value(8), 4);
        assert_eq!(bits_for_value(u64::MAX), 64);
    }

    #[test]
    fn count_bits() {
        assert_eq!(bits_for_count(1), 1);
        assert_eq!(bits_for_count(3), 2);
        assert_eq!(bits_for_count(4), 2);
        assert_eq!(bits_for_count(5), 3);
    }

    /// Boundary cases: the degenerate inputs 0 and 1 (both clamp to one
    /// bit) and exact powers of two, where off-by-one errors in the
    /// `count - 1` / `leading_zeros` arithmetic would show first.
    #[test]
    fn value_bits_boundaries() {
        assert_eq!(bits_for_value(0), 1);
        assert_eq!(bits_for_value(1), 1);
        for k in 1..63u32 {
            let pow = 1u64 << k;
            // 2^k needs k+1 bits; 2^k − 1 needs k bits.
            assert_eq!(bits_for_value(pow), k as usize + 1, "value 2^{k}");
            assert_eq!(bits_for_value(pow - 1), k as usize, "value 2^{k} - 1");
        }
        assert_eq!(bits_for_value(u64::MAX), 64);
    }

    #[test]
    fn count_bits_boundaries() {
        // Degenerate domains still need one bit to index.
        assert_eq!(bits_for_count(0), 1);
        assert_eq!(bits_for_count(1), 1);
        assert_eq!(bits_for_count(2), 1);
        for k in 1..32u32 {
            let pow = 1usize << k;
            // A domain of exactly 2^k values needs k bits; one more value
            // tips it to k+1.
            assert_eq!(bits_for_count(pow), k as usize, "count 2^{k}");
            assert_eq!(bits_for_count(pow + 1), k as usize + 1, "count 2^{k} + 1");
        }
    }

    #[test]
    fn bits_are_monotone() {
        let mut prev = 0;
        for x in 0..4096u64 {
            let b = bits_for_value(x);
            assert!(b >= prev);
            prev = b;
        }
        let mut prev = 0;
        for c in 0..4096usize {
            let b = bits_for_count(c);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn composite_sizes() {
        assert_eq!(().bit_size(), 0);
        assert_eq!(true.bit_size(), 1);
        assert_eq!(5u64.bit_size(), 3);
        assert_eq!(Some(5u64).bit_size(), 4);
        assert_eq!(None::<u64>.bit_size(), 1);
        assert_eq!((true, 5u64).bit_size(), 4);
        assert_eq!((true, 5u64, 2u32).bit_size(), 6);
    }
}
