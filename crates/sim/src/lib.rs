//! Synchronous message-passing simulator for the CONGEST and LOCAL models.
//!
//! The classic CONGEST model ([Peleg, *Distributed Computing: A
//! Locality-Sensitive Approach*]) has the `n` nodes of a graph communicate
//! in synchronous rounds; per round, each node may send one `O(log n)`-bit
//! message along each incident edge. The LOCAL model is identical but with
//! unbounded message sizes.
//!
//! This crate simulates both models deterministically:
//!
//! * [`Protocol`] — the per-node algorithm: an `init` step and a `round`
//!   step that reads the inbox and sends messages through [`Context`].
//! * [`Engine`] — runs a protocol instance on every node of a
//!   [`Graph`](congest_graph::Graph), delivering messages with one-round
//!   latency, until all nodes halt (or a round cap is hit).
//! * [`Message`] — messages carry a *bit size* so the engine can meter the
//!   CONGEST `O(log n)` budget ([`RunStats::max_message_bits`],
//!   [`RunStats::budget_violations`]); [`PackedMsg`] additionally fixes
//!   each message type's ≤ 64-bit wire format, which is what the planes
//!   store.
//! * Reproducibility — every node derives its own RNG from the master seed
//!   via [`rng::node_rng`], so runs are bit-for-bit repeatable.
//! * Fault injection — an optional seeded [`Adversary`] drops, duplicates,
//!   reorders, and corrupts messages in flight and crash-stops nodes
//!   (optionally restarting them with reset state), with every decision a
//!   pure function of the adversary seed and the event's coordinates, so
//!   fault schedules replay bit-identically too (see the
//!   [`fault`](Adversary) docs). Off by default, with zero behavior change
//!   when disabled.
//! * Asynchrony — an optional seeded [`AsyncScheduler`] gives each
//!   delivered message a deterministic per-edge extra delay drawn from a
//!   configurable [`DelayDist`]; the synchronous engine is the zero-delay
//!   special case (see the [`sched`](AsyncScheduler) docs).
//!
//! Nodes address each other through *ports* (indices into their adjacency
//! list); they know their own id, weight, degree, per-port edge weights and
//! neighbor ids, plus the standard global parameters `n` and `Δ`. That
//! static knowledge is handed out as [`NodeInfo`], a zero-copy `Copy`
//! struct of slices borrowed from the graph's flat CSR adjacency — see
//! its docs for the borrow contract.
//!
//! Messages move through flat *message planes* shaped like the same CSR
//! block — one packed 64-bit payload word per directed edge (see
//! [`PackedMsg`]) plus a per-node occupancy bitmap bit: a node's sends
//! fill its row of the send plane, and delivery scatters each word into
//! the receiver's row of the receive plane, which the receiver observes
//! next round as a port-indexed [`Inbox`]. Planes are preallocated once
//! per run (≤ 9 bytes per directed edge at average degree 8 — see
//! [`plane_bytes_for`]), the steady-state round loop allocates nothing,
//! inboxes arrive port-ordered without sorting, and silent stretches are
//! skipped 64 ports at a time via the bitmap.
//!
//! # Example: flood a token from node 0
//!
//! ```
//! use congest_graph::generators;
//! use congest_sim::{Context, Engine, Inbox, Message, Protocol, SimConfig, Status};
//!
//! use congest_sim::PackedMsg;
//!
//! #[derive(Clone, Debug)]
//! struct Token;
//! impl Message for Token {
//!     fn bit_size(&self) -> usize { 1 }
//! }
//! impl PackedMsg for Token {
//!     const BITS: u32 = 0; // the token's presence is the information
//!     fn pack(&self) -> u64 { 0 }
//!     fn unpack(_word: u64) -> Self { Token }
//! }
//!
//! struct Flood { seen: bool }
//! impl Protocol for Flood {
//!     type Msg = Token;
//!     type Output = bool;
//!     fn init(&mut self, ctx: &mut Context<'_, Token>) {
//!         if ctx.id().0 == 0 {
//!             self.seen = true;
//!             ctx.broadcast(Token);
//!         }
//!     }
//!     fn round(&mut self, ctx: &mut Context<'_, Token>, inbox: Inbox<'_, Token>)
//!         -> Status<bool>
//!     {
//!         if !self.seen && !inbox.is_empty() {
//!             self.seen = true;
//!             ctx.broadcast(Token);
//!         }
//!         if self.seen { Status::Halt(true) } else { Status::Active }
//!     }
//! }
//!
//! let g = generators::path(5);
//! let outcome = Engine::build(&g, SimConfig::congest_for(&g), |_| Flood { seen: false })
//!     .run(0xC0FFEE);
//! assert!(outcome.completed);
//! assert_eq!(outcome.stats.rounds, 4); // diameter of P_5
//! ```

mod context;
mod engine;
mod fault;
mod inbox;
mod message;
mod packed;
mod protocol;
mod sched;

pub mod rng;

pub use context::Context;
pub use engine::{
    plane_bytes, plane_bytes_for, run_protocol, Engine, MessageTrace, RunOutcome, RunStats,
    ShardedRun, SimConfig,
};
pub use fault::Adversary;
pub use inbox::{Inbox, InboxIter};
pub use message::{bits_for_count, bits_for_value, Message};
pub use packed::PackedMsg;
pub use protocol::{NodeInfo, Port, Protocol, Status};
pub use sched::{AsyncScheduler, DelayDist, MAX_DELAY};
