//! Bit-packed wire representation of protocol messages.
//!
//! The engine's message planes store one dense `u64` *word* per directed
//! edge (plus one occupancy bit — see the engine docs), so every message
//! type must state how it serializes into such a word. That is exactly the
//! CONGEST discipline made structural: the model allows `O(log n)` bits per
//! edge per round, a plane word offers 64, and a protocol whose messages
//! cannot be packed into 64 bits is *not* a CONGEST protocol for any
//! `n ≤ 2^64` worth simulating. [`PackedMsg::BITS`] is the compile-time
//! width bound; [`Message::bit_size`](crate::Message::bit_size) remains the
//! per-value information content the budget meter charges (usually far
//! below `BITS`, e.g. a small id in a 64-bit frame).

use crate::Message;

/// A message with a fixed-width packed wire format.
///
/// # Contract
///
/// * `unpack(pack(&m)) == m` for every value `m` the protocol can send
///   (round-trip identity — proptested per implementation).
/// * `pack` only uses the low [`BITS`](Self::BITS) bits: for every `m`,
///   `pack(&m) >> BITS == 0` (for `BITS == 64` the condition is vacuous).
///   "High bits zero" is what lets the engine treat the word as the whole
///   message — corruption, duplication, and fingerprinting all operate on
///   the word.
/// * `BITS ≤ 64`. The engine forces the check at compile (monomorphization)
///   time by evaluating [`BITS_OK`](Self::BITS_OK), so an over-wide
///   implementation cannot run.
/// * `unpack` must be total on every word `pack` can produce, but may
///   return an arbitrary (well-formed) message for other words: the
///   corruption adversary garbles *unpacked* messages via
///   [`Message::corrupted`] and repacks the result, so `unpack` never sees
///   wild bit patterns.
///
/// # The CONGEST-bits argument
///
/// The source paper's algorithms exchange a constant number of ids,
/// priorities, and weight layers per message — `O(log n)` bits. Packing
/// each `Msg` enum into one machine word is therefore lossless *by model
/// assumption*: a variant tag (2–3 bits), a weight-layer index (≤ 7 bits,
/// layers cap at 64), and a priority or id bounded by a fixed power of two
/// chosen so the total stays ≤ 64. Protocols whose payload domains could
/// exceed their field width (e.g. subtree weight sums) assert the domain
/// bound in `pack`, making the wire contract explicit instead of silently
/// truncating.
pub trait PackedMsg: Message {
    /// Number of low bits of the packed word this type may use (≤ 64).
    const BITS: u32;

    /// Evaluates to `()` iff `BITS ≤ 64`. The engine references this
    /// constant for every protocol message type it runs, turning an
    /// over-wide `BITS` into a compile-time error rather than a silent
    /// truncation.
    const BITS_OK: () = assert!(
        Self::BITS <= 64,
        "PackedMsg::BITS must fit the 64-bit plane word"
    );

    /// Serializes the message into the low [`BITS`](Self::BITS) bits of a
    /// word.
    fn pack(&self) -> u64;

    /// Deserializes a word produced by [`pack`](Self::pack).
    fn unpack(word: u64) -> Self;
}

impl PackedMsg for () {
    const BITS: u32 = 0;

    #[inline]
    fn pack(&self) -> u64 {
        0
    }

    #[inline]
    fn unpack(_word: u64) -> Self {}
}

impl PackedMsg for bool {
    const BITS: u32 = 1;

    #[inline]
    fn pack(&self) -> u64 {
        u64::from(*self)
    }

    #[inline]
    fn unpack(word: u64) -> Self {
        word & 1 != 0
    }
}

impl PackedMsg for u32 {
    const BITS: u32 = 32;

    #[inline]
    fn pack(&self) -> u64 {
        u64::from(*self)
    }

    #[inline]
    fn unpack(word: u64) -> Self {
        word as u32
    }
}

impl PackedMsg for u64 {
    const BITS: u32 = 64;

    #[inline]
    fn pack(&self) -> u64 {
        *self
    }

    #[inline]
    fn unpack(word: u64) -> Self {
        word
    }
}

/// `Option<T>`: one presence bit in the lowest position, the payload above
/// it. Requires `T::BITS < 64` (checked at monomorphization via
/// [`PackedMsg::BITS_OK`]).
impl<T: PackedMsg> PackedMsg for Option<T> {
    const BITS: u32 = T::BITS + 1;

    #[inline]
    fn pack(&self) -> u64 {
        let () = Self::BITS_OK;
        match self {
            None => 0,
            Some(t) => 1 | (t.pack() << 1),
        }
    }

    #[inline]
    fn unpack(word: u64) -> Self {
        if word & 1 == 0 {
            None
        } else {
            Some(T::unpack(word >> 1))
        }
    }
}

/// Pairs concatenate their fields, first component in the low bits.
impl<A: PackedMsg, B: PackedMsg> PackedMsg for (A, B) {
    const BITS: u32 = A::BITS + B::BITS;

    #[inline]
    fn pack(&self) -> u64 {
        let () = Self::BITS_OK;
        // `A::BITS == 64` forces `B::BITS == 0` here, so the shift below
        // cannot overflow once BITS_OK holds — except in the corner where
        // A alone fills the word; route that through a checked shift.
        self.0.pack() | self.1.pack().checked_shl(A::BITS).unwrap_or(0)
    }

    #[inline]
    fn unpack(word: u64) -> Self {
        let a_mask = if A::BITS == 64 {
            u64::MAX
        } else {
            (1u64 << A::BITS) - 1
        };
        (
            A::unpack(word & a_mask),
            B::unpack(word.checked_shr(A::BITS).unwrap_or(0)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: PackedMsg + PartialEq>(m: &M) {
        let word = m.pack();
        if M::BITS < 64 {
            assert_eq!(word >> M::BITS, 0, "high bits must be zero");
        }
        assert_eq!(&M::unpack(word), m);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&());
        roundtrip(&true);
        roundtrip(&false);
        for x in [0u32, 1, 7, u32::MAX] {
            roundtrip(&x);
        }
        for x in [0u64, 1, 0xFFFF_FFFF_FFFF, u64::MAX] {
            roundtrip(&x);
        }
    }

    #[test]
    fn option_and_pair_roundtrip() {
        roundtrip(&None::<u32>);
        roundtrip(&Some(u32::MAX));
        roundtrip(&Some(true));
        roundtrip(&(true, 7u32));
        roundtrip(&(u32::MAX, u32::MAX));
        assert_eq!(<Option<u32>>::BITS, 33);
        assert_eq!(<(u32, bool)>::BITS, 33);
    }
}
