//! Seeded asynchronous round scheduler.
//!
//! Synchronous CONGEST — the model the paper's bounds are stated in —
//! delivers every message exactly one round after it is sent. Real
//! message-passing deployments do not: links stall, queues back up, and a
//! message sent in round `r` may surface many ticks later. The
//! [`AsyncScheduler`] models that gap while keeping every run replayable:
//! each directed-edge delivery gets an extra delay drawn from a
//! [`DelayDist`] by hashing `(round, from, to)` through the same pure
//! SplitMix64 coins the [`Adversary`](crate::Adversary) uses
//! ([`rng::coin`](crate::rng::coin)). Because the delay is a pure function
//! of the event's coordinates — not of any shared RNG stream — schedules
//! are independent of node processing order, slot compaction, and parallel
//! chunking, so `run ≡ run_parallel` bit-for-bit under any delay
//! distribution.
//!
//! A scheduler whose distribution cannot exceed zero delay (e.g.
//! `Uniform { max: 0 }`) degenerates to the synchronous engine exactly:
//! the engine detects `max_delay() == 0` and takes the single-plane fast
//! path, pinned by the recorded gnp-1000 fingerprints.

use crate::rng::coin;
use congest_graph::NodeId;

/// Salt for per-edge delay coins (distinct from every `Adversary` salt).
const DELAY_SALT: u64 = 0xDE1A_75EE_D000_0008;

/// Largest per-message delay any distribution may be configured with.
/// The engine keeps `max_delay + 1` message planes alive (a ring buffer
/// over arrival rounds), so this bounds memory at `O(max_delay · m)`.
pub const MAX_DELAY: usize = 4096;

/// The distribution a scheduler draws per-message delays from. A delay of
/// `d` means a message sent in round `r` is readable in round `r + 1 + d`
/// — `d = 0` is the synchronous case.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelayDist {
    /// Uniform over `0..=max` extra rounds.
    Uniform {
        /// Largest delay (inclusive); `0` means synchronous.
        max: usize,
    },
    /// Geometric: each pending message is delivered on a given tick with
    /// probability `p`, truncated at `max` extra rounds — the classic
    /// "asynchronous link that flips a delivery coin every step".
    Geometric {
        /// Per-tick delivery probability, in `(0, 1]`.
        p: f64,
        /// Truncation point so the plane ring stays bounded.
        max: usize,
    },
}

impl DelayDist {
    /// Largest delay this distribution can produce.
    #[must_use]
    pub fn max_delay(&self) -> usize {
        match *self {
            DelayDist::Uniform { max } | DelayDist::Geometric { max, .. } => max,
        }
    }

    /// Panics (naming the offending field) unless the parameters are
    /// sane: probabilities in range, truncation within [`MAX_DELAY`].
    pub fn validate(&self) {
        match *self {
            DelayDist::Uniform { max } => {
                assert!(
                    max <= MAX_DELAY,
                    "DelayDist::Uniform::max = {max} exceeds MAX_DELAY = {MAX_DELAY}"
                );
            }
            DelayDist::Geometric { p, max } => {
                assert!(
                    p.is_finite() && p > 0.0 && p <= 1.0,
                    "DelayDist::Geometric::p = {p} ∉ (0, 1]"
                );
                assert!(
                    max <= MAX_DELAY,
                    "DelayDist::Geometric::max = {max} exceeds MAX_DELAY = {MAX_DELAY}"
                );
            }
        }
    }

    /// Maps a uniform coin `u ∈ [0, 1)` to a delay via inverse CDF.
    fn sample(&self, u: f64) -> usize {
        match *self {
            DelayDist::Uniform { max } => {
                // Multiply-and-floor over max+1 buckets; the `.min` guards
                // the (unreachable at u < 1) top edge against FP rounding.
                ((u * (max as f64 + 1.0)) as usize).min(max)
            }
            DelayDist::Geometric { p, max } => {
                if p >= 1.0 {
                    return 0;
                }
                // Failures before the first success: ⌊ln(1-u)/ln(1-p)⌋.
                let d = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
                if d.is_finite() && d >= 0.0 {
                    (d as usize).min(max)
                } else {
                    max
                }
            }
        }
    }
}

/// A deterministic asynchronous scheduler: assigns every directed-edge
/// delivery an extra delay drawn from `dist`, keyed by the send round and
/// the edge's endpoints under `seed`. Install via
/// [`SimConfig::with_scheduler`](crate::SimConfig::with_scheduler).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AsyncScheduler {
    /// The per-message delay distribution.
    pub dist: DelayDist,
    /// Seed for the delay coins — independent of protocol RNG streams and
    /// of every `Adversary` seed (distinct salt).
    pub seed: u64,
}

impl AsyncScheduler {
    /// Uniform delays over `0..=max` extra rounds.
    #[must_use]
    pub fn uniform(max: usize, seed: u64) -> Self {
        let s = Self {
            dist: DelayDist::Uniform { max },
            seed,
        };
        s.validate();
        s
    }

    /// Geometric delays with per-tick delivery probability `p`, truncated
    /// at `max` extra rounds.
    #[must_use]
    pub fn geometric(p: f64, max: usize, seed: u64) -> Self {
        let s = Self {
            dist: DelayDist::Geometric { p, max },
            seed,
        };
        s.validate();
        s
    }

    /// Largest delay this scheduler can assign; `0` means the scheduler
    /// is synchronous and the engine takes the single-plane fast path.
    #[must_use]
    pub fn max_delay(&self) -> usize {
        self.dist.max_delay()
    }

    /// Panics (naming the field) on out-of-range parameters.
    pub fn validate(&self) {
        self.dist.validate();
    }

    /// The extra delay for the message sent from `from` to `to` in
    /// `round` — a pure function of its arguments and the seed.
    #[must_use]
    pub fn delay(&self, round: usize, from: NodeId, to: NodeId) -> usize {
        if self.max_delay() == 0 {
            return 0;
        }
        let coord = (u64::from(from.0) << 32) | u64::from(to.0);
        self.dist
            .sample(coin(self.seed, DELAY_SALT, round as u64, coord))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_delays_cover_range_and_replay() {
        let s = AsyncScheduler::uniform(3, 99);
        let mut seen = [false; 4];
        for r in 0..64 {
            for v in 0..8u32 {
                let d = s.delay(r, NodeId(v), NodeId(v + 1));
                assert!(d <= 3);
                seen[d] = true;
                assert_eq!(d, s.delay(r, NodeId(v), NodeId(v + 1)), "pure coin");
            }
        }
        assert!(seen.iter().all(|&b| b), "64×8 draws must hit all of 0..=3");
    }

    #[test]
    fn zero_max_is_synchronous() {
        let s = AsyncScheduler::uniform(0, 1);
        for r in 0..32 {
            assert_eq!(s.delay(r, NodeId(0), NodeId(1)), 0);
        }
    }

    #[test]
    fn geometric_is_biased_toward_small_delays() {
        let s = AsyncScheduler::geometric(0.6, 8, 5);
        let mut zeros = 0usize;
        let mut total = 0usize;
        for r in 0..256 {
            for v in 0..4u32 {
                let d = s.delay(r, NodeId(v), NodeId(v + 4));
                assert!(d <= 8);
                if d == 0 {
                    zeros += 1;
                }
                total += 1;
            }
        }
        // P(d = 0) = 0.6; with 1024 draws the count concentrates hard.
        assert!(
            zeros * 2 > total,
            "p=0.6 must deliver most messages on time"
        );
    }

    #[test]
    fn delay_is_seed_and_coordinate_sensitive() {
        let a = AsyncScheduler::uniform(7, 1);
        let b = AsyncScheduler::uniform(7, 2);
        let mut diff_seed = false;
        let mut diff_dir = false;
        for r in 0..64 {
            if a.delay(r, NodeId(3), NodeId(4)) != b.delay(r, NodeId(3), NodeId(4)) {
                diff_seed = true;
            }
            if a.delay(r, NodeId(3), NodeId(4)) != a.delay(r, NodeId(4), NodeId(3)) {
                diff_dir = true;
            }
        }
        assert!(diff_seed, "seeds must decorrelate schedules");
        assert!(
            diff_dir,
            "the two directions of an edge delay independently"
        );
    }

    #[test]
    #[should_panic(expected = "DelayDist::Geometric::p")]
    fn geometric_rejects_nan_probability() {
        let _ = AsyncScheduler::geometric(f64::NAN, 4, 0);
    }

    #[test]
    #[should_panic(expected = "DelayDist::Geometric::p")]
    fn geometric_rejects_zero_probability() {
        let _ = AsyncScheduler::geometric(0.0, 4, 0);
    }

    #[test]
    #[should_panic(expected = "DelayDist::Uniform::max")]
    fn uniform_rejects_absurd_max() {
        let _ = AsyncScheduler::uniform(MAX_DELAY + 1, 0);
    }
}
