//! Verifies the tentpole memory discipline: the steady-state round loop
//! performs **zero engine-side heap allocations**. The message planes,
//! slot table, outputs, and liveness buffers are all allocated in
//! `Engine::build` / the `run` prologue, so the total allocation count of
//! a run must not depend on how many rounds it executes.
//!
//! The test protocol is itself allocation-free (plain `u64` broadcasts,
//! no per-round state growth), so every counted allocation is the
//! engine's. Only the sequential executor is pinned here: on multi-core
//! hosts the parallel path's scoped-thread shim allocates O(threads) per
//! round for worker handles (the real rayon's persistent pool would not),
//! which is engine-external and documented in `shims/README.md`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use congest_graph::generators;
use congest_sim::{Context, Engine, Inbox, Protocol, SimConfig, Status};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// System allocator wrapper that counts every allocation (alloc and
/// realloc; deallocations are free).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed-enough atomic
// counter; layout handling is exactly the system allocator's.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Broadcasts a constant every round and never halts (the run ends at the
/// round cap), keeping every edge of the graph busy without allocating.
struct Chatter;

impl Protocol for Chatter {
    type Msg = u64;
    type Output = ();

    fn init(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(0xDEAD);
    }

    fn round(&mut self, ctx: &mut Context<'_, u64>, inbox: Inbox<'_, u64>) -> Status<()> {
        let mut acc = 0u64;
        for (port, msg) in inbox {
            acc = acc.wrapping_add(msg ^ port as u64);
        }
        ctx.broadcast(acc);
        Status::Active
    }
}

/// Allocation count of one full build + run at the given round cap.
fn allocations_once(g: &congest_graph::Graph, rounds: usize) -> u64 {
    let config = SimConfig::local().with_max_rounds(rounds);
    let engine = Engine::build(g, config, |_| Chatter);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let outcome = engine.run(42);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(outcome.stats.rounds, rounds);
    assert!(!outcome.completed);
    after - before
}

/// Minimum allocation count over a few identical runs. The counter is
/// process-wide, so an unrelated runtime thread (signal handling, stdio,
/// the test harness's own bookkeeping) occasionally allocates *inside* a
/// measurement window; that noise can only inflate a sample, never
/// deflate it, so the minimum over independent attempts converges to the
/// engine's true count.
fn allocations_for(g: &congest_graph::Graph, rounds: usize) -> u64 {
    (0..5).map(|_| allocations_once(g, rounds)).min().unwrap()
}

// Both checks live in ONE #[test]: the counter is process-wide, and a
// second test running on a concurrent harness thread (or its output
// capture) could allocate inside a measurement window and flake the
// delta comparison. A single test means a single thread touching the
// counter.
#[test]
fn steady_state_rounds_allocate_nothing() {
    let mut rng = SmallRng::seed_from_u64(99);
    let g = generators::gnp(300, 0.03, &mut rng);
    assert!(g.num_edges() > 500, "graph must be message-heavy");
    let short = allocations_for(&g, 8);
    let long = allocations_for(&g, 64);
    // The prologue (slots, planes, outputs, liveness) allocates; the 56
    // extra rounds must not add a single allocation.
    assert!(short > 0, "prologue allocations should be visible");
    assert_eq!(
        short, long,
        "round loop allocated: {short} allocations over 8 rounds vs {long} over 64"
    );

    // On a single-threaded host `run_parallel` takes the inline fallback
    // and must share the zero-allocation property; on multi-core hosts
    // the scoped-thread shim allocates per round for worker handles
    // (engine-external, see shims/README.md), so the check only applies
    // where the fallback is active.
    if rayon::current_num_threads() == 1 {
        let run_par_once = |rounds: usize| {
            let config = SimConfig::local().with_max_rounds(rounds);
            let engine = Engine::build(&g, config, |_| Chatter);
            let before = ALLOCATIONS.load(Ordering::SeqCst);
            let _ = engine.run_parallel(42);
            ALLOCATIONS.load(Ordering::SeqCst) - before
        };
        // Minimum over attempts, for the same ambient-noise reason as
        // `allocations_for`.
        let run_par = |rounds: usize| (0..5).map(|_| run_par_once(rounds)).min().unwrap();
        assert_eq!(
            run_par(8),
            run_par(64),
            "run_parallel's single-thread fallback allocated per round"
        );
    }
}
