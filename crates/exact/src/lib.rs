//! Exact and sequential baselines for evaluating the distributed
//! approximation algorithms.
//!
//! The paper's guarantees are multiplicative factors against the true
//! optimum; this crate computes those optima (where tractable) plus the
//! classic sequential heuristics used as additional reference points:
//!
//! * [`blossom_maximum_matching`] — Edmonds' blossom algorithm: exact
//!   maximum *cardinality* matching in general graphs, `O(n³)`.
//! * [`hopcroft_karp`] — exact maximum cardinality matching in bipartite
//!   graphs, `O(m√n)`.
//! * [`hungarian_max_weight_matching`] — exact maximum *weight* matching
//!   in bipartite graphs via the Hungarian algorithm, `O(n³)`.
//! * [`brute_force_mwis`] — branch-and-bound maximum weight independent
//!   set (exact; exponential, intended for `n ≲ 40`).
//! * [`brute_force_mwm`] — branch-and-bound maximum weight matching for
//!   small general graphs.
//! * [`greedy_matching`] — heaviest-edge-first greedy matching, the
//!   classic sequential 2-approximation for MWM.
//! * [`greedy_mwis`] — weight-greedy independent set heuristic.
//!
//! # Example
//!
//! ```
//! use congest_graph::generators;
//! use congest_exact::{blossom_maximum_matching, greedy_matching};
//!
//! let g = generators::cycle(9);
//! let opt = blossom_maximum_matching(&g);
//! assert_eq!(opt.len(), 4); // ⌊9/2⌋
//! let greedy = greedy_matching(&g);
//! assert!(2 * greedy.weight(&g) >= opt.weight(&g));
//! ```

mod blossom;
mod brute;
mod greedy;
mod hopcroft_karp;
mod hungarian;

pub use blossom::blossom_maximum_matching;
pub use brute::{brute_force_mwis, brute_force_mwm};
pub use greedy::{greedy_matching, greedy_mwis};
pub use hopcroft_karp::hopcroft_karp;
pub use hungarian::hungarian_max_weight_matching;

use congest_graph::{Bipartition, Graph, Matching};

/// Best available exact maximum-weight-matching oracle for `g`:
/// the Hungarian algorithm when `g` is bipartite, branch-and-bound when
/// `g` is small, `None` otherwise.
pub fn max_weight_matching_oracle(g: &Graph) -> Option<Matching> {
    if let Some(bp) = Bipartition::of(g) {
        return Some(hungarian_max_weight_matching(g, &bp));
    }
    if g.num_edges() <= 40 {
        return Some(brute_force_mwm(g));
    }
    None
}
