//! Hopcroft–Karp maximum cardinality matching for bipartite graphs
//! \[HK73\] — the sequential ancestor of the paper's phased
//! augmenting-path framework (Appendix B.2), and the exact oracle used to
//! score its distributed descendants.

use congest_graph::{Bipartition, Graph, Matching, NodeId};

const NONE: usize = usize::MAX;
const INF: u32 = u32::MAX;

/// Exact maximum cardinality matching of a bipartite graph in `O(m√n)`.
///
/// # Panics
/// Panics if `bp` is not a proper bipartition of `g`.
///
/// # Example
///
/// ```
/// use congest_graph::{generators, Bipartition};
/// use congest_exact::hopcroft_karp;
///
/// let g = generators::complete_bipartite(3, 5);
/// let bp = Bipartition::of(&g).unwrap();
/// assert_eq!(hopcroft_karp(&g, &bp).len(), 3);
/// ```
pub fn hopcroft_karp(g: &Graph, bp: &Bipartition) -> Matching {
    assert!(
        bp.is_proper(g),
        "bipartition must be proper for Hopcroft-Karp"
    );
    let left: Vec<NodeId> = bp.left().collect();
    let n = g.num_nodes();
    let mut mate = vec![NONE; n];
    let mut dist = vec![INF; n];

    // BFS from free left nodes, layering by alternating distance.
    let bfs = |mate: &[usize], dist: &mut [u32]| -> bool {
        let mut queue = std::collections::VecDeque::new();
        for &u in &left {
            if mate[u.index()] == NONE {
                dist[u.index()] = 0;
                queue.push_back(u.index());
            } else {
                dist[u.index()] = INF;
            }
        }
        let mut found = false;
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbor_ids(NodeId(u as u32)) {
                let w = mate[v.index()];
                if w == NONE {
                    found = true;
                } else if dist[w] == INF {
                    dist[w] = dist[u] + 1;
                    queue.push_back(w);
                }
            }
        }
        found
    };

    fn dfs(g: &Graph, u: usize, mate: &mut [usize], dist: &mut [u32]) -> bool {
        for i in 0..g.degree(NodeId(u as u32)) {
            let v = g.neighbor_ids(NodeId(u as u32))[i];
            let w = mate[v.index()];
            if w == NONE || (dist[w] == dist[u] + 1 && dfs(g, w, mate, dist)) {
                mate[u] = v.index();
                mate[v.index()] = u;
                return true;
            }
        }
        dist[u] = INF;
        false
    }

    while bfs(&mate, &mut dist) {
        for &u in &left {
            if mate[u.index()] == NONE {
                dfs(g, u.index(), &mut mate, &mut dist);
            }
        }
    }

    let mut m = Matching::new(g);
    for &u in &left {
        let v = mate[u.index()];
        if v != NONE {
            let e = g
                .find_edge(u, NodeId(v as u32))
                .expect("mate pairs are edges");
            m.insert(g, e);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blossom_maximum_matching;
    use congest_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn complete_bipartite_matches_min_side() {
        for (a, b) in [(1, 1), (2, 5), (4, 4), (6, 3)] {
            let g = generators::complete_bipartite(a, b);
            let bp = Bipartition::of(&g).unwrap();
            assert_eq!(hopcroft_karp(&g, &bp).len(), a.min(b));
        }
    }

    #[test]
    fn even_cycles_perfect() {
        let g = generators::cycle(10);
        let bp = Bipartition::of(&g).unwrap();
        let m = hopcroft_karp(&g, &bp);
        assert!(m.is_perfect(&g));
    }

    #[test]
    fn agrees_with_blossom_on_random_bipartite() {
        let mut rng = SmallRng::seed_from_u64(55);
        for trial in 0..10 {
            let g = generators::random_bipartite(12, 14, 0.25, &mut rng);
            let bp = Bipartition::of(&g).unwrap();
            let hk = hopcroft_karp(&g, &bp);
            let bl = blossom_maximum_matching(&g);
            assert!(hk.is_valid(&g));
            assert_eq!(hk.len(), bl.len(), "trial {trial}");
        }
    }

    #[test]
    #[should_panic(expected = "proper")]
    fn rejects_improper_bipartition() {
        let g = generators::path(3);
        let bad = Bipartition::from_sides(vec![false, false, false]);
        hopcroft_karp(&g, &bad);
    }

    #[test]
    fn empty_graph() {
        let g = congest_graph::GraphBuilder::with_nodes(4).build();
        let bp = Bipartition::of(&g).unwrap();
        assert_eq!(hopcroft_karp(&g, &bp).len(), 0);
    }
}
