//! Exponential-time exact solvers for small instances: the ground truth
//! for approximation-ratio experiments.

use congest_graph::{EdgeId, Graph, IndependentSet, Matching, NodeId};

/// Exact maximum weight independent set by branch and bound.
///
/// Branches on the highest-degree remaining node (include / exclude),
/// pruning with the trivial remaining-weight bound. Practical for
/// `n ≲ 40` on sparse graphs.
///
/// # Panics
/// Panics if `g` has more than 64 nodes (bitmask representation).
///
/// # Example
///
/// ```
/// use congest_graph::generators;
/// use congest_exact::brute_force_mwis;
///
/// let g = generators::cycle(5); // unit weights: MaxIS = 2
/// assert_eq!(brute_force_mwis(&g).weight(&g), 2);
/// ```
pub fn brute_force_mwis(g: &Graph) -> IndependentSet {
    let n = g.num_nodes();
    assert!(
        n <= 64,
        "brute-force MWIS supports at most 64 nodes, got {n}"
    );
    if n == 0 {
        return IndependentSet::new(g);
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let adj: Vec<u64> = (0..n)
        .map(|v| {
            g.neighbor_ids(NodeId(v as u32))
                .iter()
                .fold(0u64, |m, &u| m | (1u64 << u.index()))
        })
        .collect();
    let weights: Vec<u64> = g.node_weights().to_vec();

    struct Search<'a> {
        adj: &'a [u64],
        weights: &'a [u64],
        best_weight: u64,
        best_set: u64,
    }

    impl Search<'_> {
        fn remaining_weight(&self, mut mask: u64) -> u64 {
            let mut sum = 0;
            while mask != 0 {
                let v = mask.trailing_zeros() as usize;
                sum += self.weights[v];
                mask &= mask - 1;
            }
            sum
        }

        fn run(&mut self, remaining: u64, chosen: u64, weight: u64) {
            if weight > self.best_weight {
                self.best_weight = weight;
                self.best_set = chosen;
            }
            if remaining == 0 || weight + self.remaining_weight(remaining) <= self.best_weight {
                return;
            }
            // Branch on the remaining node with the most remaining neighbors.
            let mut pick = remaining.trailing_zeros() as usize;
            let mut pick_deg = (self.adj[pick] & remaining).count_ones();
            let mut scan = remaining & (remaining - 1);
            while scan != 0 {
                let v = scan.trailing_zeros() as usize;
                let deg = (self.adj[v] & remaining).count_ones();
                if deg > pick_deg {
                    pick = v;
                    pick_deg = deg;
                }
                scan &= scan - 1;
            }
            let bit = 1u64 << pick;
            // Include `pick`.
            self.run(
                remaining & !bit & !self.adj[pick],
                chosen | bit,
                weight + self.weights[pick],
            );
            // Exclude `pick`.
            self.run(remaining & !bit, chosen, weight);
        }
    }

    let mut search = Search {
        adj: &adj,
        weights: &weights,
        best_weight: 0,
        best_set: 0,
    };
    search.run(full, 0, 0);

    IndependentSet::from_members(
        g,
        (0..n)
            .filter(|&v| search.best_set & (1u64 << v) != 0)
            .map(|v| NodeId(v as u32)),
    )
}

/// Exact maximum weight matching by branch and bound over edges.
///
/// Exponential in the number of edges; practical for `m ≲ 40`. With unit
/// weights the result is a maximum cardinality matching (used to
/// cross-check the blossom implementation).
pub fn brute_force_mwm(g: &Graph) -> Matching {
    let m = g.num_edges();
    // Sort edges by descending weight so the bound tightens early.
    let mut order: Vec<EdgeId> = g.edges().collect();
    order.sort_by_key(|&e| std::cmp::Reverse(g.edge_weight(e)));
    let suffix_weight: Vec<u64> = {
        let mut acc = vec![0u64; m + 1];
        for i in (0..m).rev() {
            acc[i] = acc[i + 1] + g.edge_weight(order[i]);
        }
        acc
    };

    struct Search<'a> {
        g: &'a Graph,
        order: &'a [EdgeId],
        suffix_weight: &'a [u64],
        used: Vec<bool>,
        best_weight: u64,
        best_edges: Vec<EdgeId>,
        current: Vec<EdgeId>,
    }

    impl Search<'_> {
        fn run(&mut self, idx: usize, weight: u64) {
            if weight > self.best_weight {
                self.best_weight = weight;
                self.best_edges = self.current.clone();
            }
            if idx == self.order.len() || weight + self.suffix_weight[idx] <= self.best_weight {
                return;
            }
            let e = self.order[idx];
            let (u, v) = self.g.endpoints(e);
            if !self.used[u.index()] && !self.used[v.index()] {
                self.used[u.index()] = true;
                self.used[v.index()] = true;
                self.current.push(e);
                self.run(idx + 1, weight + self.g.edge_weight(e));
                self.current.pop();
                self.used[u.index()] = false;
                self.used[v.index()] = false;
            }
            self.run(idx + 1, weight);
        }
    }

    let mut search = Search {
        g,
        order: &order,
        suffix_weight: &suffix_weight,
        used: vec![false; g.num_nodes()],
        best_weight: 0,
        best_edges: Vec::new(),
        current: Vec::new(),
    };
    search.run(0, 0);
    Matching::from_edges(g, search.best_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, GraphBuilder};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn mwis_on_classics() {
        assert_eq!(
            brute_force_mwis(&generators::path(4)).weight(&generators::path(4)),
            2
        );
        assert_eq!(brute_force_mwis(&generators::cycle(6)).len(), 3);
        assert_eq!(brute_force_mwis(&generators::complete(7)).len(), 1);
        let star = generators::star(10);
        assert_eq!(brute_force_mwis(&star).len(), 9);
    }

    #[test]
    fn mwis_weighted_star_picks_heavy_center() {
        let mut g = generators::star(5);
        g.set_node_weight(NodeId(0), 100);
        let s = brute_force_mwis(&g);
        assert_eq!(s.weight(&g), 100);
        assert!(s.contains(NodeId(0)));
    }

    #[test]
    fn mwis_result_is_independent() {
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..10 {
            let mut g = generators::gnp(16, 0.3, &mut rng);
            for v in g.nodes().collect::<Vec<_>>() {
                g.set_node_weight(v, rng.random_range(1..20));
            }
            let s = brute_force_mwis(&g);
            assert!(s.is_independent(&g));
        }
    }

    #[test]
    fn mwis_beats_or_ties_every_single_node() {
        let mut rng = SmallRng::seed_from_u64(14);
        let mut g = generators::gnp(12, 0.3, &mut rng);
        for v in g.nodes().collect::<Vec<_>>() {
            g.set_node_weight(v, rng.random_range(1..30));
        }
        let best = brute_force_mwis(&g).weight(&g);
        for v in g.nodes() {
            assert!(best >= g.node_weight(v));
        }
    }

    #[test]
    fn mwm_on_classics() {
        let p4 = generators::path(4);
        assert_eq!(brute_force_mwm(&p4).len(), 2);
        let c5 = generators::cycle(5);
        assert_eq!(brute_force_mwm(&c5).len(), 2);
    }

    #[test]
    fn mwm_weighted_middle_edge() {
        let mut b = GraphBuilder::with_nodes(4);
        b.add_weighted_edge(0.into(), 1.into(), 2);
        b.add_weighted_edge(1.into(), 2.into(), 5);
        b.add_weighted_edge(2.into(), 3.into(), 2);
        let g = b.build();
        assert_eq!(brute_force_mwm(&g).weight(&g), 5);
    }

    #[test]
    fn mwm_is_valid_matching() {
        let mut rng = SmallRng::seed_from_u64(15);
        for _ in 0..10 {
            let mut g = generators::gnp(10, 0.3, &mut rng);
            for e in g.edges().collect::<Vec<_>>() {
                g.set_edge_weight(e, rng.random_range(1..10));
            }
            let m = brute_force_mwm(&g);
            assert!(m.is_valid(&g));
        }
    }

    #[test]
    fn empty_graphs() {
        let g = GraphBuilder::new().build();
        assert_eq!(brute_force_mwis(&g).len(), 0);
        assert_eq!(brute_force_mwm(&g).len(), 0);
    }
}
