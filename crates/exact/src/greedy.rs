//! Sequential greedy heuristics — fast reference points for large
//! instances where exact optima are intractable.

use congest_graph::{EdgeId, Graph, IndependentSet, Matching, NodeId};

/// Heaviest-edge-first greedy matching: the classic sequential
/// 2-approximation for maximum weight matching.
///
/// Ties are broken by edge id for determinism.
///
/// # Example
///
/// ```
/// use congest_graph::generators;
/// use congest_exact::greedy_matching;
///
/// let g = generators::cycle(6);
/// assert_eq!(greedy_matching(&g).len(), 3);
/// ```
pub fn greedy_matching(g: &Graph) -> Matching {
    let mut order: Vec<EdgeId> = g.edges().collect();
    order.sort_by_key(|&e| (std::cmp::Reverse(g.edge_weight(e)), e));
    let mut m = Matching::new(g);
    for e in order {
        m.try_insert(g, e);
    }
    m
}

/// Heaviest-node-first greedy independent set.
///
/// Ties are broken by node id for determinism. This is *not* the
/// degree-aware greedy of \[HR97\]; it is the natural weight-greedy
/// baseline the local-ratio algorithms are compared against in benches.
pub fn greedy_mwis(g: &Graph) -> IndependentSet {
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.node_weight(v)), v));
    let mut set = IndependentSet::new(g);
    let mut blocked = vec![false; g.num_nodes()];
    for v in order {
        if blocked[v.index()] {
            continue;
        }
        set.insert(v);
        blocked[v.index()] = true;
        for &u in g.neighbor_ids(v) {
            blocked[u.index()] = true;
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force_mwis, brute_force_mwm};
    use congest_graph::{generators, GraphBuilder};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn greedy_matching_is_half_approx() {
        let mut rng = SmallRng::seed_from_u64(20);
        for _ in 0..10 {
            let mut g = generators::gnp(10, 0.3, &mut rng);
            for e in g.edges().collect::<Vec<_>>() {
                g.set_edge_weight(e, rng.random_range(1..20));
            }
            let greedy = greedy_matching(&g).weight(&g);
            let opt = brute_force_mwm(&g).weight(&g);
            assert!(2 * greedy >= opt, "greedy {greedy} vs opt {opt}");
            assert!(greedy <= opt);
        }
    }

    #[test]
    fn greedy_matching_is_maximal() {
        let mut rng = SmallRng::seed_from_u64(21);
        let g = generators::gnp(40, 0.1, &mut rng);
        assert!(greedy_matching(&g).is_maximal(&g));
    }

    #[test]
    fn greedy_mwis_is_independent_and_maximal() {
        let mut rng = SmallRng::seed_from_u64(22);
        let mut g = generators::gnp(40, 0.1, &mut rng);
        for v in g.nodes().collect::<Vec<_>>() {
            g.set_node_weight(v, rng.random_range(1..9));
        }
        let s = greedy_mwis(&g);
        assert!(s.is_maximal(&g));
        assert!(s.weight(&g) <= brute_force_mwis(&g).weight(&g));
    }

    #[test]
    fn greedy_mwis_takes_heavy_center_of_star() {
        let mut g = generators::star(6);
        g.set_node_weight(NodeId(0), 50);
        let s = greedy_mwis(&g);
        assert!(s.contains(NodeId(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn greedy_matching_can_be_suboptimal() {
        // Path with weights 3-4-3: greedy takes the 4, optimum takes 3+3.
        let mut b = GraphBuilder::with_nodes(4);
        b.add_weighted_edge(0.into(), 1.into(), 3);
        b.add_weighted_edge(1.into(), 2.into(), 4);
        b.add_weighted_edge(2.into(), 3.into(), 3);
        let g = b.build();
        assert_eq!(greedy_matching(&g).weight(&g), 4);
        assert_eq!(brute_force_mwm(&g).weight(&g), 6);
    }
}
