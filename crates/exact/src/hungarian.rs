//! Hungarian (Kuhn–Munkres) algorithm: exact maximum weight matching in
//! bipartite graphs, `O(n³)` with potentials.
//!
//! Maximum *weight* matching reduces to the assignment problem: pad the
//! bipartite graph to a complete one where non-edges have weight 0; any
//! minimum-cost (with costs = negated weights) perfect assignment on the
//! padded graph induces a maximum-weight matching on the original edges.

use congest_graph::{Bipartition, Graph, Matching, NodeId};

const INF: i64 = i64::MAX / 4;

/// Exact maximum weight matching of a bipartite graph.
///
/// # Panics
/// Panics if `bp` is not a proper bipartition of `g`.
///
/// # Example
///
/// ```
/// use congest_graph::{Bipartition, GraphBuilder};
/// use congest_exact::hungarian_max_weight_matching;
///
/// // Two left nodes competing for a shared right node.
/// let mut b = GraphBuilder::with_nodes(3);
/// b.add_weighted_edge(0.into(), 2.into(), 10);
/// b.add_weighted_edge(1.into(), 2.into(), 7);
/// let g = b.build();
/// let bp = Bipartition::from_sides(vec![false, false, true]);
/// let m = hungarian_max_weight_matching(&g, &bp);
/// assert_eq!(m.weight(&g), 10);
/// ```
pub fn hungarian_max_weight_matching(g: &Graph, bp: &Bipartition) -> Matching {
    assert!(
        bp.is_proper(g),
        "bipartition must be proper for the Hungarian algorithm"
    );
    let mut left: Vec<NodeId> = bp.left().collect();
    let mut right: Vec<NodeId> = bp.right().collect();
    if left.len() > right.len() {
        std::mem::swap(&mut left, &mut right);
    }
    let (rows, cols) = (left.len(), right.len());
    if rows == 0 {
        return Matching::new(g);
    }

    // cost[i][j] = −weight(edge) for edges, 0 for non-edges ("unmatched").
    let mut cost = vec![vec![0i64; cols + 1]; rows + 1];
    for (i, &u) in left.iter().enumerate() {
        for (j, &v) in right.iter().enumerate() {
            if let Some(e) = g.find_edge(u, v) {
                cost[i + 1][j + 1] = -(g.edge_weight(e) as i64);
            }
        }
    }

    // Potentials-based assignment (1-indexed; p[j] = row assigned to col j).
    let mut u = vec![0i64; rows + 1];
    let mut v = vec![0i64; cols + 1];
    let mut p = vec![0usize; cols + 1];
    let mut way = vec![0usize; cols + 1];
    for i in 1..=rows {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; cols + 1];
        let mut used = vec![false; cols + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=cols {
                if used[j] {
                    continue;
                }
                let cur = cost[i0][j] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=cols {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut m = Matching::new(g);
    for j in 1..=cols {
        let i = p[j];
        if i == 0 {
            continue;
        }
        let (lu, rv) = (left[i - 1], right[j - 1]);
        if let Some(e) = g.find_edge(lu, rv) {
            m.insert(g, e);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force_mwm, hopcroft_karp};
    use congest_graph::{generators, GraphBuilder};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn prefers_heavy_edge_over_two_light() {
        // Path a−b−c−d: taking the middle edge (weight 10) beats the two
        // outer edges (3 + 3 = 6)... make it so.
        let mut b = GraphBuilder::with_nodes(4);
        b.add_weighted_edge(0.into(), 1.into(), 3);
        b.add_weighted_edge(1.into(), 2.into(), 10);
        b.add_weighted_edge(2.into(), 3.into(), 3);
        let g = b.build();
        let bp = Bipartition::of(&g).unwrap();
        let m = hungarian_max_weight_matching(&g, &bp);
        assert_eq!(m.weight(&g), 10);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn prefers_two_medium_over_one_heavy() {
        let mut b = GraphBuilder::with_nodes(4);
        b.add_weighted_edge(0.into(), 1.into(), 6);
        b.add_weighted_edge(1.into(), 2.into(), 10);
        b.add_weighted_edge(2.into(), 3.into(), 6);
        let g = b.build();
        let bp = Bipartition::of(&g).unwrap();
        let m = hungarian_max_weight_matching(&g, &bp);
        assert_eq!(m.weight(&g), 12);
    }

    #[test]
    fn unit_weights_match_hopcroft_karp_cardinality() {
        let mut rng = SmallRng::seed_from_u64(10);
        for trial in 0..10 {
            let g = generators::random_bipartite(8, 9, 0.3, &mut rng);
            let bp = Bipartition::of(&g).unwrap();
            let hk = hopcroft_karp(&g, &bp).len() as u64;
            let hung = hungarian_max_weight_matching(&g, &bp);
            assert!(hung.is_valid(&g));
            assert_eq!(hung.weight(&g), hk, "trial {trial}");
        }
    }

    #[test]
    fn matches_brute_force_on_random_weighted_bipartite() {
        let mut rng = SmallRng::seed_from_u64(11);
        for trial in 0..10 {
            let mut g = generators::random_bipartite(5, 6, 0.4, &mut rng);
            for e in g.edges().collect::<Vec<_>>() {
                g.set_edge_weight(e, rng.random_range(1..50));
            }
            let bp = Bipartition::of(&g).unwrap();
            let hung = hungarian_max_weight_matching(&g, &bp);
            let brute = brute_force_mwm(&g);
            assert_eq!(hung.weight(&g), brute.weight(&g), "trial {trial}");
        }
    }

    #[test]
    fn asymmetric_sides_both_orientations() {
        // More left than right nodes forces the internal swap.
        let mut b = GraphBuilder::with_nodes(4);
        b.add_weighted_edge(0.into(), 3.into(), 5);
        b.add_weighted_edge(1.into(), 3.into(), 9);
        b.add_weighted_edge(2.into(), 3.into(), 7);
        let g = b.build();
        let bp = Bipartition::from_sides(vec![false, false, false, true]);
        let m = hungarian_max_weight_matching(&g, &bp);
        assert_eq!(m.weight(&g), 9);
    }

    #[test]
    fn empty_side() {
        let g = GraphBuilder::with_nodes(3).build();
        let bp = Bipartition::from_sides(vec![true, true, true]);
        assert_eq!(hungarian_max_weight_matching(&g, &bp).len(), 0);
    }
}
