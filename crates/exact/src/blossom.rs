//! Edmonds' blossom algorithm for maximum cardinality matching in general
//! graphs \[Edm65\]. Classic `O(n³)` formulation with blossom contraction
//! via base pointers.

use congest_graph::{Graph, Matching, NodeId};

const NONE: usize = usize::MAX;

struct Blossom<'g> {
    g: &'g Graph,
    /// `mate[v]` = matched partner of `v`, or `NONE`.
    mate: Vec<usize>,
    /// `parent[v]` = BFS tree parent (an "odd" node) of even node `v`.
    parent: Vec<usize>,
    /// `base[v]` = base vertex of the blossom currently containing `v`.
    base: Vec<usize>,
    queue: std::collections::VecDeque<usize>,
    in_queue: Vec<bool>,
    in_blossom: Vec<bool>,
}

impl<'g> Blossom<'g> {
    fn new(g: &'g Graph) -> Self {
        let n = g.num_nodes();
        Blossom {
            g,
            mate: vec![NONE; n],
            parent: vec![NONE; n],
            base: (0..n).collect(),
            queue: std::collections::VecDeque::new(),
            in_queue: vec![false; n],
            in_blossom: vec![false; n],
        }
    }

    fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.g
            .neighbor_ids(NodeId(v as u32))
            .iter()
            .map(|u| u.index())
    }

    /// Lowest common ancestor of `a` and `b` in the alternating tree,
    /// walking bases upward.
    fn lca(&self, mut a: usize, mut b: usize) -> usize {
        let n = self.g.num_nodes();
        let mut used = vec![false; n];
        loop {
            a = self.base[a];
            used[a] = true;
            if self.mate[a] == NONE {
                break;
            }
            a = self.parent[self.mate[a]];
        }
        loop {
            b = self.base[b];
            if used[b] {
                return b;
            }
            b = self.parent[self.mate[b]];
        }
    }

    /// Marks the blossom path from `v` down to base `b`, re-rooting
    /// parents towards `child`.
    fn mark_path(&mut self, mut v: usize, b: usize, mut child: usize) {
        while self.base[v] != b {
            let mv = self.mate[v];
            self.in_blossom[self.base[v]] = true;
            self.in_blossom[self.base[mv]] = true;
            self.parent[v] = child;
            child = mv;
            v = self.parent[mv];
        }
    }

    fn contract(&mut self, u: usize, v: usize) {
        let n = self.g.num_nodes();
        self.in_blossom = vec![false; n];
        let b = self.lca(u, v);
        self.mark_path(u, b, v);
        self.mark_path(v, b, u);
        for i in 0..n {
            if self.in_blossom[self.base[i]] {
                self.base[i] = b;
                if !self.in_queue[i] {
                    self.in_queue[i] = true;
                    self.queue.push_back(i);
                }
            }
        }
    }

    /// BFS from exposed `root`; returns the far end of an augmenting path
    /// if one is found.
    fn find_augmenting_path(&mut self, root: usize) -> usize {
        let n = self.g.num_nodes();
        self.parent = vec![NONE; n];
        self.base = (0..n).collect();
        self.in_queue = vec![false; n];
        self.queue.clear();
        self.queue.push_back(root);
        self.in_queue[root] = true;

        while let Some(v) = self.queue.pop_front() {
            let nbrs: Vec<usize> = self.neighbors(v).collect();
            for to in nbrs {
                if self.base[v] == self.base[to] || self.mate[v] == to {
                    continue;
                }
                if to == root || (self.mate[to] != NONE && self.parent[self.mate[to]] != NONE) {
                    // Odd cycle: contract the blossom.
                    self.contract(v, to);
                } else if self.parent[to] == NONE {
                    self.parent[to] = v;
                    if self.mate[to] == NONE {
                        return to; // augmenting path found
                    }
                    let m = self.mate[to];
                    if !self.in_queue[m] {
                        self.in_queue[m] = true;
                        self.queue.push_back(m);
                    }
                }
            }
        }
        NONE
    }

    /// Flips the found augmenting path ending at `v`.
    fn augment(&mut self, mut v: usize) {
        while v != NONE {
            let pv = self.parent[v];
            let ppv = self.mate[pv];
            self.mate[v] = pv;
            self.mate[pv] = v;
            v = ppv;
        }
    }

    fn solve(mut self) -> Vec<usize> {
        let n = self.g.num_nodes();
        // Greedy warm start halves the number of BFS phases in practice.
        for v in 0..n {
            if self.mate[v] == NONE {
                let partner = self.neighbors(v).find(|&u| self.mate[u] == NONE);
                if let Some(u) = partner {
                    self.mate[v] = u;
                    self.mate[u] = v;
                }
            }
        }
        for v in 0..n {
            if self.mate[v] == NONE {
                let end = self.find_augmenting_path(v);
                if end != NONE {
                    self.augment(end);
                }
            }
        }
        self.mate
    }
}

/// Exact maximum cardinality matching via Edmonds' blossom algorithm.
///
/// Edge weights are ignored; the result maximizes the *number* of edges.
///
/// # Example
///
/// ```
/// use congest_graph::generators;
/// use congest_exact::blossom_maximum_matching;
///
/// // An odd cycle has a maximum matching of ⌊n/2⌋ — finding it requires
/// // handling the blossom.
/// let g = generators::cycle(7);
/// assert_eq!(blossom_maximum_matching(&g).len(), 3);
/// ```
pub fn blossom_maximum_matching(g: &Graph) -> Matching {
    let mate = Blossom::new(g).solve();
    let mut m = Matching::new(g);
    for (v, &u) in mate.iter().enumerate().take(g.num_nodes()) {
        if u != NONE && v < u {
            let e = g
                .find_edge(NodeId(v as u32), NodeId(u as u32))
                .expect("mate pairs are edges");
            m.insert(g, e);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_mwm;
    use congest_graph::{generators, GraphBuilder};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn paths_and_cycles() {
        assert_eq!(blossom_maximum_matching(&generators::path(2)).len(), 1);
        assert_eq!(blossom_maximum_matching(&generators::path(7)).len(), 3);
        assert_eq!(blossom_maximum_matching(&generators::cycle(6)).len(), 3);
        assert_eq!(blossom_maximum_matching(&generators::cycle(9)).len(), 4);
    }

    #[test]
    fn complete_graphs_have_floor_half() {
        for n in 2..10 {
            let g = generators::complete(n);
            assert_eq!(blossom_maximum_matching(&g).len(), n / 2, "K_{n}");
        }
    }

    #[test]
    fn petersen_graph_has_perfect_matching() {
        // The Petersen graph: outer 5-cycle, inner pentagram, spokes.
        let mut b = GraphBuilder::with_nodes(10);
        for i in 0..5u32 {
            b.add_edge(i.into(), ((i + 1) % 5).into());
            b.add_edge((5 + i).into(), (5 + (i + 2) % 5).into());
            b.add_edge(i.into(), (5 + i).into());
        }
        let g = b.build();
        let m = blossom_maximum_matching(&g);
        assert_eq!(m.len(), 5);
        assert!(m.is_perfect(&g));
    }

    #[test]
    fn requires_blossom_handling() {
        // Two triangles joined by a bridge: maximum matching = 3, but a
        // greedy matcher can get stuck at 2 without blossoms.
        let mut b = GraphBuilder::with_nodes(6);
        b.add_edge(0.into(), 1.into());
        b.add_edge(1.into(), 2.into());
        b.add_edge(0.into(), 2.into());
        b.add_edge(3.into(), 4.into());
        b.add_edge(4.into(), 5.into());
        b.add_edge(3.into(), 5.into());
        b.add_edge(2.into(), 3.into());
        let g = b.build();
        assert_eq!(blossom_maximum_matching(&g).len(), 3);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(77);
        for trial in 0..20 {
            let g = generators::gnp(10, 0.35, &mut rng);
            if g.num_edges() > 24 {
                continue;
            }
            let blossom = blossom_maximum_matching(&g);
            let brute = brute_force_mwm(&g); // unit weights ⇒ cardinality
            assert!(blossom.is_valid(&g));
            assert_eq!(blossom.len(), brute.len(), "trial {trial}");
        }
    }

    #[test]
    fn empty_and_single_node() {
        let g0 = GraphBuilder::new().build();
        assert_eq!(blossom_maximum_matching(&g0).len(), 0);
        let g1 = GraphBuilder::with_nodes(1).build();
        assert_eq!(blossom_maximum_matching(&g1).len(), 0);
    }
}
