//! Criterion timing for the Table-1 row 3 algorithms (E3): the
//! nearly-maximal matching on the line graph, the weighted bucketing
//! pipeline, and the 2-approx local-ratio matching for comparison.

use congest_approx::fast::{mcm_two_plus_eps, mwm_two_plus_eps};
use congest_approx::matching::mwm_lr_randomized;
use congest_approx::maxis::Alg2Config;
use congest_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fast_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast_matching");
    for &(n, d) in &[(128usize, 8usize), (256, 16)] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let mut g = generators::random_regular(n, d, &mut rng);
        generators::randomize_edge_weights(&mut g, 256, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("mcm_2eps", format!("n{n}-d{d}")),
            &g,
            |b, g| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(mcm_two_plus_eps(g, 0.25, seed))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mwm_2eps_weighted", format!("n{n}-d{d}")),
            &g,
            |b, g| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(mwm_two_plus_eps(g, 0.25, seed))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mwm_lr_2approx", format!("n{n}-d{d}")),
            &g,
            |b, g| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(mwm_lr_randomized(g, &Alg2Config::default(), seed))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fast_matching
}
criterion_main!(benches);
