//! Sequential vs parallel engine execution across graph topologies.

use congest_graph::{generators, Graph};
use congest_mis::LubyMis;
use congest_sim::{Engine, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_gnp_luby");
    for &n in &[1_000usize, 4_000] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
        let config = SimConfig::congest_for(&g);
        group.bench_with_input(BenchmarkId::new("run", n), &g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(Engine::build(g, config.clone(), |_| LubyMis::new()).run(seed))
            });
        });
        group.bench_with_input(BenchmarkId::new("run_parallel", n), &g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(Engine::build(g, config.clone(), |_| LubyMis::new()).run_parallel(seed))
            });
        });
    }
    group.finish();
}

/// The same engine comparison on topology shapes beyond G(n,p):
/// small-world (Watts–Strogatz), clustered scale-free (Holme–Kim), and
/// preferential attachment (Barabási–Albert).
fn bench_engine_topologies(c: &mut Criterion) {
    let n = 4_000usize;
    let mut rng = SmallRng::seed_from_u64(42);
    let shapes: Vec<(&str, Graph)> = vec![
        (
            "watts_strogatz",
            generators::watts_strogatz(n, 8, 0.1, &mut rng),
        ),
        (
            "power_law_cluster",
            generators::power_law_cluster(n, 4, 0.5, &mut rng),
        ),
        (
            "barabasi_albert",
            generators::barabasi_albert(n, 4, &mut rng),
        ),
    ];
    let mut group = c.benchmark_group("engine_topology_luby");
    for (name, g) in &shapes {
        let config = SimConfig::congest_for(g);
        group.bench_with_input(BenchmarkId::new("run", name), g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(Engine::build(g, config.clone(), |_| LubyMis::new()).run(seed))
            });
        });
        group.bench_with_input(BenchmarkId::new("run_parallel", name), g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(Engine::build(g, config.clone(), |_| LubyMis::new()).run_parallel(seed))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine, bench_engine_topologies
}
criterion_main!(benches);
