//! Sequential vs parallel engine execution on G(n,p) graphs.

use congest_graph::generators;
use congest_mis::LubyMis;
use congest_sim::{Engine, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_gnp_luby");
    for &n in &[1_000usize, 4_000] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
        let config = SimConfig::congest_for(&g);
        group.bench_with_input(BenchmarkId::new("run", n), &g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(Engine::build(g, config.clone(), |_| LubyMis::new()).run(seed))
            });
        });
        group.bench_with_input(BenchmarkId::new("run_parallel", n), &g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(Engine::build(g, config.clone(), |_| LubyMis::new()).run_parallel(seed))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine
}
criterion_main!(benches);
