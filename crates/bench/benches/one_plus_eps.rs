//! Criterion timing for the Table-1 row 4 algorithms (E4): the LOCAL and
//! CONGEST `(1+ε)` matching pipelines, with the exact blossom algorithm
//! as the sequential reference.

use congest_approx::hk::{mcm_one_plus_eps_congest, mcm_one_plus_eps_local};
use congest_exact::blossom_maximum_matching;
use congest_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_one_plus_eps(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_plus_eps");
    for &(n, d) in &[(48usize, 3usize), (80, 4)] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let g = generators::random_regular(n, d, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("local_b2", format!("n{n}-d{d}")),
            &g,
            |b, g| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(mcm_one_plus_eps_local(g, 0.34, seed))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("congest_b3", format!("n{n}-d{d}")),
            &g,
            |b, g| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(mcm_one_plus_eps_congest(g, 0.5, seed))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("blossom_exact", format!("n{n}-d{d}")),
            &g,
            |b, g| b.iter(|| black_box(blossom_maximum_matching(g))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_one_plus_eps
}
criterion_main!(benches);
