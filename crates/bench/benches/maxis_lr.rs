//! Criterion timing for the Table-1 row 1/2 algorithms (E1/E2): the
//! layered randomized Algorithm 2, the deterministic Algorithm 3, and the
//! sequential Algorithm 1 reference, across graph sizes.

use congest_approx::maxis::{alg2, alg3, sequential_local_ratio, Alg2Config, SelectionRule};
use congest_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_maxis(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxis");
    for &n in &[128usize, 512] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let mut g = generators::random_regular(n, 4, &mut rng);
        generators::randomize_node_weights(&mut g, 1024, &mut rng);
        group.bench_with_input(BenchmarkId::new("alg2_randomized", n), &g, |b, g| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(alg2(g, &Alg2Config::default(), seed))
            });
        });
        group.bench_with_input(BenchmarkId::new("alg3_deterministic", n), &g, |b, g| {
            b.iter(|| black_box(alg3(g)));
        });
        group.bench_with_input(BenchmarkId::new("alg1_sequential", n), &g, |b, g| {
            b.iter(|| black_box(sequential_local_ratio(g, SelectionRule::TopLayerGreedyMis)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_maxis
}
criterion_main!(benches);
