//! Criterion timing for the coloring substrate (E2's first stage):
//! Linial + Kuhn–Wattenhofer pipeline vs the randomized coloring.

use congest_coloring::{deterministic_delta_plus_one, RandomizedColoring};
use congest_graph::generators;
use congest_sim::{run_protocol, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring");
    for &(n, d) in &[(256usize, 4usize), (1024, 8)] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let g = generators::random_regular(n, d, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("linial_kw_pipeline", format!("n{n}-d{d}")),
            &g,
            |b, g| b.iter(|| black_box(deterministic_delta_plus_one(g))),
        );
        group.bench_with_input(
            BenchmarkId::new("randomized", format!("n{n}-d{d}")),
            &g,
            |b, g| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(run_protocol(
                        g,
                        SimConfig::congest_for(g),
                        |_| RandomizedColoring::new(),
                        seed,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_coloring
}
criterion_main!(benches);
