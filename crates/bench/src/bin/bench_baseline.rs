//! Machine-readable engine performance baseline.
//!
//! Times the three phases of the canonical gnp Luby-MIS workload —
//! `Engine::build`, `Engine::run`, and `Engine::run_parallel` — at
//! n ∈ {1 000, 10 000, 100 000} (average degree 8 throughout) and
//! *appends* one record per size to `BENCH_engine.json`, a JSON array
//! checked into the repository so successive PRs leave a perf trajectory;
//! CI and reviewers diff it rather than re-deriving numbers from criterion
//! logs. A pre-existing single-object file (the PR 3 schema) is wrapped
//! in place as the array's first entry, so the trajectory keeps its
//! oldest point.
//!
//! ```text
//! cargo run --release -p congest-bench --bin bench_baseline [-- PATH] [--samples N]
//! ```
//!
//! `--samples N` overrides the per-phase sample count (default 21; CI uses
//! a tiny count to keep the job cheap — the medians it records are noisy
//! but the schema is identical). Each record carries the `threads` the
//! host offered, because `run_parallel` medians are only meaningful
//! relative to it: on a single-threaded host the parallel executor takes
//! its documented inline fallback and matches `run` instead of beating it.

// Wall-clock measurement and CLI parsing are this binary's entire job;
// the workspace-wide ban (clippy.toml / congest-lint
// no-ambient-nondeterminism) targets protocol code, not the bench tier.
#![allow(clippy::disallowed_methods)]

use congest_graph::generators;
use congest_mis::LubyMis;
use congest_sim::{Engine, SimConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Default timed samples per phase; the median is robust to scheduler
/// noise.
const DEFAULT_SAMPLES: usize = 21;

/// Graph sizes of the baseline matrix (average degree 8 at every size).
const SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// Median of a sample set in nanoseconds.
fn median_ns(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Collects `samples` timings from `f` (which returns the ns of just the
/// phase it measures, so setup like `Engine::build` stays outside the
/// timed window) and returns the median.
fn measure(samples: usize, mut f: impl FnMut() -> u128) -> u128 {
    // One warm-up pass so first-touch page faults don't land in sample 0.
    f();
    let samples = (0..samples).map(|_| f()).collect();
    median_ns(samples)
}

/// One benchmark record for graph size `n`.
fn record_for(n: usize, samples: usize) -> String {
    let p = 8.0 / n as f64;
    let mut rng = SmallRng::seed_from_u64(n as u64);
    let g = generators::gnp(n, p, &mut rng);
    let config = SimConfig::congest_for(&g);

    let build_ns = measure(samples, || {
        let start = Instant::now();
        black_box(Engine::build(&g, config.clone(), |_| LubyMis::new()));
        start.elapsed().as_nanos()
    });
    // `run` and `run_parallel` samples are interleaved (same seed per
    // pair) so slow drift — thermal state, page cache, a noisy neighbor
    // on shared hardware — biases both executors equally instead of
    // whichever phase happens to be measured second.
    let mut run_samples = Vec::with_capacity(samples);
    let mut run_parallel_samples = Vec::with_capacity(samples);
    for seed in 0..=samples as u64 {
        let engine = Engine::build(&g, config.clone(), |_| LubyMis::new());
        let start = Instant::now();
        black_box(engine.run(seed));
        let seq_ns = start.elapsed().as_nanos();
        let engine = Engine::build(&g, config.clone(), |_| LubyMis::new());
        let start = Instant::now();
        black_box(engine.run_parallel(seed));
        let par_ns = start.elapsed().as_nanos();
        // Seed 0 is the warm-up pair.
        if seed > 0 {
            run_samples.push(seq_ns);
            run_parallel_samples.push(par_ns);
        }
    }
    let run_ns = median_ns(run_samples);
    let run_parallel_ns = median_ns(run_parallel_samples);

    format!(
        "  {{\n    \"bench\": \"engine_gnp_luby\",\n    \"graph\": {{ \"family\": \"gnp\", \"n\": {n}, \"p\": {p}, \"seed\": {n}, \"edges\": {m} }},\n    \"protocol\": \"LubyMis\",\n    \"samples\": {samples},\n    \"threads\": {threads},\n    \"median_ns\": {{\n      \"build\": {build_ns},\n      \"run\": {run_ns},\n      \"run_parallel\": {run_parallel_ns}\n    }}\n  }}",
        m = g.num_edges(),
        threads = rayon::current_num_threads(),
    )
}

fn main() {
    let mut out_path = "BENCH_engine.json".to_string();
    let mut samples = DEFAULT_SAMPLES;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--samples" {
            let v = args.next().expect("--samples needs a value");
            samples = v.parse().expect("--samples value must be an integer");
            assert!(samples > 0, "--samples must be positive");
        } else if let Some(v) = arg.strip_prefix("--samples=") {
            samples = v.parse().expect("--samples value must be an integer");
            assert!(samples > 0, "--samples must be positive");
        } else if arg.starts_with('-') {
            // Don't let a flag typo silently become the output path.
            panic!("unknown flag {arg}; usage: bench_baseline [PATH] [--samples N]");
        } else {
            out_path = arg;
        }
    }

    let records: Vec<String> = SIZES
        .iter()
        .map(|&n| {
            eprintln!("measuring n = {n} ({samples} samples/phase)...");
            record_for(n, samples)
        })
        .collect();
    // The append semantics (array creation, legacy single-object
    // wrapping, corrupt-file refusal) live in the shared ledger module so
    // the perf baseline and the conformance harness cannot drift apart.
    let json = congest_bench::ledger::append_to_file(&out_path, &records);
    println!("wrote {out_path}:\n{json}");
}
