//! Machine-readable engine performance baseline.
//!
//! Times the three phases of the canonical gnp Luby-MIS workload —
//! `Engine::build`, `Engine::run`, and `Engine::run_parallel_with` — over
//! a size × worker-count matrix (average degree 8 throughout) and
//! *appends* one record per cell to `BENCH_engine.json`, a JSON array
//! checked into the repository so successive PRs leave a perf trajectory;
//! CI and reviewers diff it rather than re-deriving numbers from criterion
//! logs. A pre-existing single-object file (the PR 3 schema) is wrapped
//! in place as the array's first entry, so the trajectory keeps its
//! oldest point.
//!
//! ```text
//! cargo run --release -p congest-bench --bin bench_baseline \
//!     [-- PATH] [--samples N] [--sizes a,b,c] [--threads t1,t2] [--no-ride-along]
//! ```
//!
//! `--sizes` picks the graph sizes (default 1000,10000,100000); sizes of
//! a million and beyond switch the generator to the `O(n + m)`
//! Batagelj–Brandes `gnp_skip` — the quadratic coin-flip `gnp` cannot
//! produce them in reasonable time. `--threads` picks the worker counts
//! handed to `run_parallel_with` (default: what the host offers). Each
//! record carries both the *requested* `threads` and the `host_threads`
//! actually available, because parallel medians on an oversubscribed
//! host measure context-switching, not the executor: consumers gate
//! speedup assertions on `threads <= host_threads`. Records also carry
//! `plane_bytes`, the exact packed message-plane footprint for the
//! graph, pinning the ≤ 9 bytes/directed-edge/plane memory story.
//!
//! Unless `--no-ride-along` is given, sizes 10⁴ and 10⁵ additionally
//! record end-to-end medians for three non-Luby protocols — the grouped
//! local-ratio matching, randomized (Δ+1)-coloring, and the Algorithm 2
//! MaxIS — so engine-level wins are visible beyond a single workload.
//!
//! `--samples N` overrides the per-phase sample count (default 21; CI
//! uses a tiny count to keep the job cheap — the medians it records are
//! noisy but the schema is identical).
//!
//! `--churn` switches to the dynamic-graph mode: for n ∈ {10⁴, 10⁵} and
//! k ∈ {16, 256} seeded edge flips it times [`luby_repair`] and
//! [`grouped_mwm_repair`] against full recomputation on the post-flip
//! graph, appending rows whose `median_ns` keys are `repair` and
//! `recompute` (and asserting repair used strictly fewer rounds).

// Wall-clock measurement and CLI parsing are this binary's entire job;
// the workspace-wide ban (clippy.toml / congest-lint
// no-ambient-nondeterminism) targets protocol code, not the bench tier.
#![allow(clippy::disallowed_methods)]

use congest_approx::matching::{grouped_mwm_repair, mwm_grouped};
use congest_approx::maxis::{alg2, Alg2Config};
use congest_coloring::RandomizedColoring;
use congest_graph::{generators, DeltaGraph, DeltaSet, Graph, NodeId};
use congest_mis::{luby_repair, LubyMis, MisResult};
use congest_sim::{plane_bytes_for, run_protocol, Engine, SimConfig};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Default timed samples per phase; the median is robust to scheduler
/// noise.
const DEFAULT_SAMPLES: usize = 21;

/// Default graph sizes of the baseline matrix (average degree 8 at every
/// size).
const DEFAULT_SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// Sizes at which the non-Luby ride-along protocols are also measured.
const RIDE_ALONG_SIZES: [usize; 2] = [10_000, 100_000];

/// Above this size the quadratic `gnp` is replaced by the `O(n + m)`
/// skip-sampling generator.
const GNP_SKIP_THRESHOLD: usize = 1_000_000;

/// Sizes of the `--churn` repair-vs-recompute matrix.
const CHURN_SIZES: [usize; 2] = [10_000, 100_000];

/// Edge-flip batch sizes of the `--churn` matrix.
const CHURN_KS: [usize; 2] = [16, 256];

/// Median of a sample set in nanoseconds.
fn median_ns(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Collects `samples` timings from `f` (which returns the ns of just the
/// phase it measures, so setup like `Engine::build` stays outside the
/// timed window) and returns the median.
fn measure(samples: usize, mut f: impl FnMut() -> u128) -> u128 {
    // One warm-up pass so first-touch page faults don't land in sample 0.
    f();
    let samples = (0..samples).map(|_| f()).collect();
    median_ns(samples)
}

/// Generates the degree-8 gnp instance for size `n`, switching to skip
/// sampling at million-node scale. Returns the graph and the generator's
/// family name for the record.
fn graph_for(n: usize) -> (Graph, &'static str) {
    let p = 8.0 / n as f64;
    let mut rng = SmallRng::seed_from_u64(n as u64);
    if n >= GNP_SKIP_THRESHOLD {
        (generators::gnp_skip(n, p, &mut rng), "gnp_skip")
    } else {
        (generators::gnp(n, p, &mut rng), "gnp")
    }
}

/// One Luby benchmark record for graph `g` at `threads` workers.
fn record_for(g: &Graph, family: &str, n: usize, threads: usize, samples: usize) -> String {
    let p = 8.0 / n as f64;
    let config = SimConfig::congest_for(g);
    // Fault-free runs keep a single receive plane (ring length 1).
    let plane_bytes = plane_bytes_for(g, 1);

    let build_ns = measure(samples, || {
        let start = Instant::now();
        black_box(Engine::build(g, config.clone(), |_| LubyMis::new()));
        start.elapsed().as_nanos()
    });
    // `run` and `run_parallel` samples are interleaved (same seed per
    // pair) so slow drift — thermal state, page cache, a noisy neighbor
    // on shared hardware — biases both executors equally instead of
    // whichever phase happens to be measured second.
    let mut run_samples = Vec::with_capacity(samples);
    let mut run_parallel_samples = Vec::with_capacity(samples);
    for seed in 0..=samples as u64 {
        let engine = Engine::build(g, config.clone(), |_| LubyMis::new());
        let start = Instant::now();
        black_box(engine.run(seed));
        let seq_ns = start.elapsed().as_nanos();
        let engine = Engine::build(g, config.clone(), |_| LubyMis::new());
        let start = Instant::now();
        black_box(engine.run_parallel_with(seed, threads));
        let par_ns = start.elapsed().as_nanos();
        // Seed 0 is the warm-up pair.
        if seed > 0 {
            run_samples.push(seq_ns);
            run_parallel_samples.push(par_ns);
        }
    }
    let run_ns = median_ns(run_samples);
    let run_parallel_ns = median_ns(run_parallel_samples);

    format!(
        "  {{\n    \"bench\": \"engine_gnp_luby\",\n    \"graph\": {{ \"family\": \"{family}\", \"n\": {n}, \"p\": {p}, \"seed\": {n}, \"edges\": {m} }},\n    \"protocol\": \"LubyMis\",\n    \"samples\": {samples},\n    \"threads\": {threads},\n    \"host_threads\": {host},\n    \"plane_bytes\": {plane_bytes},\n    \"median_ns\": {{\n      \"build\": {build_ns},\n      \"run\": {run_ns},\n      \"run_parallel\": {run_parallel_ns}\n    }}\n  }}",
        m = g.num_edges(),
        host = rayon::current_num_threads(),
    )
}

/// One end-to-end ride-along record (driver latency, sequential
/// executor) for a named protocol on `g`.
fn ride_along_record(
    g: &Graph,
    family: &str,
    n: usize,
    samples: usize,
    protocol: &str,
    mut total: impl FnMut(u64),
) -> String {
    let p = 8.0 / n as f64;
    let total_ns = {
        let mut seed = 0u64;
        measure(samples, || {
            seed += 1;
            let start = Instant::now();
            total(seed);
            start.elapsed().as_nanos()
        })
    };
    format!(
        "  {{\n    \"bench\": \"protocol_gnp_{name}\",\n    \"graph\": {{ \"family\": \"{family}\", \"n\": {n}, \"p\": {p}, \"seed\": {n}, \"edges\": {m} }},\n    \"protocol\": \"{protocol}\",\n    \"samples\": {samples},\n    \"threads\": 1,\n    \"host_threads\": {host},\n    \"median_ns\": {{\n      \"total\": {total_ns}\n    }}\n  }}",
        name = protocol.to_lowercase(),
        m = g.num_edges(),
        host = rayon::current_num_threads(),
    )
}

/// Applies `k` seeded edge flips (remove if present, insert otherwise)
/// to a [`DeltaGraph`] over `g` and returns the delta log plus the
/// compacted post-flip graph.
fn flip_edges(g: &Graph, k: usize, seed: u64) -> (DeltaSet, Graph) {
    let n = g.num_nodes() as u32;
    let mut dg = DeltaGraph::new(g.clone());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut applied = 0;
    while applied < k {
        let u = NodeId(rng.random_range(0..n));
        let v = NodeId(rng.random_range(0..n));
        if u == v {
            continue;
        }
        if dg.has_edge(u, v) {
            dg.remove_edge(u, v);
        } else {
            dg.insert_edge(u, v, rng.random_range(1..=8u64));
        }
        applied += 1;
    }
    let deltas = dg.take_log();
    (deltas, dg.compact())
}

/// One `--churn` record: medians of incrementally repairing a prior
/// solution after `k` edge flips vs recomputing it from scratch on the
/// post-flip graph. `repair` and `recompute` take the sample seed so
/// both sides pay their full protocol cost per sample.
fn churn_record(
    g2: &Graph,
    k: usize,
    samples: usize,
    bench: &str,
    protocol: &str,
    mut repair: impl FnMut(u64) -> usize,
    mut recompute: impl FnMut(u64) -> usize,
) -> String {
    let n = g2.num_nodes();
    let p = 8.0 / n as f64;
    let mut repair_rounds = 0;
    let mut recompute_rounds = 0;
    let repair_ns = {
        let mut seed = 0u64;
        measure(samples, || {
            seed += 1;
            let start = Instant::now();
            repair_rounds = black_box(repair(seed));
            start.elapsed().as_nanos()
        })
    };
    let recompute_ns = {
        let mut seed = 0u64;
        measure(samples, || {
            seed += 1;
            let start = Instant::now();
            recompute_rounds = black_box(recompute(seed));
            start.elapsed().as_nanos()
        })
    };
    assert!(
        repair_rounds < recompute_rounds,
        "{bench} n={n} k={k}: repair took {repair_rounds} rounds, \
         recompute {recompute_rounds} — repair must be strictly cheaper"
    );
    format!(
        "  {{\n    \"bench\": \"{bench}\",\n    \"graph\": {{ \"family\": \"gnp\", \"n\": {n}, \"p\": {p}, \"seed\": {n}, \"edges\": {m} }},\n    \"protocol\": \"{protocol}\",\n    \"k_flips\": {k},\n    \"samples\": {samples},\n    \"threads\": 1,\n    \"host_threads\": {host},\n    \"rounds\": {{\n      \"repair\": {repair_rounds},\n      \"recompute\": {recompute_rounds}\n    }},\n    \"median_ns\": {{\n      \"repair\": {repair_ns},\n      \"recompute\": {recompute_ns}\n    }}\n  }}",
        m = g2.num_edges(),
        host = rayon::current_num_threads(),
    )
}

/// The `--churn` matrix: for n ∈ {10k, 100k} and k ∈ {16, 256} edge
/// flips, times Luby-MIS and grouped-matching repair against full
/// recomputation on the post-flip graph.
fn churn_records(samples: usize) -> Vec<String> {
    let mut records = Vec::new();
    for &n in &CHURN_SIZES {
        eprintln!("churn: generating n = {n}...");
        let (mut g, _) = graph_for(n);
        let mut rng = SmallRng::seed_from_u64(n as u64 ^ 0xC0FFEE);
        generators::randomize_edge_weights(&mut g, 32, &mut rng);
        let config = SimConfig::congest_for(&g);
        let prior_mis: Vec<MisResult> =
            run_protocol(&g, config.clone(), |_| LubyMis::new(), 7).into_outputs();
        let prior_pairs: Vec<(NodeId, NodeId)> = {
            let run = mwm_grouped(&g, 7);
            run.matching.edges(&g).map(|e| g.endpoints(e)).collect()
        };
        for &k in &CHURN_KS {
            eprintln!("churn: measuring n = {n}, k = {k} ({samples} samples/phase)...");
            let (deltas, g2) = flip_edges(&g, k, 0xD0 + k as u64);
            let config2 = SimConfig::congest_for(&g2);
            records.push(churn_record(
                &g2,
                k,
                samples,
                "churn_repair_luby",
                "LubyMis",
                |seed| luby_repair(&g2, &prior_mis, &deltas, seed, false).rounds,
                |seed| {
                    let outcome = run_protocol(&g2, config2.clone(), |_| LubyMis::new(), seed);
                    black_box(outcome.stats.rounds)
                },
            ));
            records.push(churn_record(
                &g2,
                k,
                samples,
                "churn_repair_grouped",
                "GroupedLrMatching",
                |seed| grouped_mwm_repair(&g2, &prior_pairs, &deltas, seed, false).rounds,
                |seed| black_box(mwm_grouped(&g2, seed)).stats.rounds,
            ));
        }
    }
    records
}

/// Parses a comma-separated list of positive integers.
fn parse_list(flag: &str, v: &str) -> Vec<usize> {
    let xs: Vec<usize> = v
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("{flag} entries must be integers, got {s:?}"))
        })
        .collect();
    assert!(!xs.is_empty(), "{flag} needs at least one value");
    assert!(xs.iter().all(|&x| x > 0), "{flag} entries must be positive");
    xs
}

fn main() {
    let mut out_path = "BENCH_engine.json".to_string();
    let mut samples = DEFAULT_SAMPLES;
    let mut sizes: Vec<usize> = DEFAULT_SIZES.to_vec();
    let mut threads: Vec<usize> = vec![rayon::current_num_threads()];
    let mut ride_along = true;
    let mut churn = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Option<String> {
            if arg == name {
                Some(
                    args.next()
                        .unwrap_or_else(|| panic!("{name} needs a value")),
                )
            } else {
                arg.strip_prefix(&format!("{name}=")).map(str::to_string)
            }
        };
        if let Some(v) = take("--samples") {
            samples = v.parse().expect("--samples value must be an integer");
            assert!(samples > 0, "--samples must be positive");
        } else if let Some(v) = take("--sizes") {
            sizes = parse_list("--sizes", &v);
        } else if let Some(v) = take("--threads") {
            threads = parse_list("--threads", &v);
        } else if arg == "--no-ride-along" {
            ride_along = false;
        } else if arg == "--churn" {
            churn = true;
        } else if arg.starts_with('-') {
            // Don't let a flag typo silently become the output path.
            panic!(
                "unknown flag {arg}; usage: bench_baseline [PATH] [--samples N] \
                 [--sizes a,b,c] [--threads t1,t2] [--no-ride-along] [--churn]"
            );
        } else {
            out_path = arg;
        }
    }

    // `--churn` is its own mode: it times incremental repair against
    // recomputation on post-flip graphs and appends those rows only.
    if churn {
        let records = churn_records(samples);
        let json = congest_bench::ledger::append_to_file(&out_path, &records);
        println!("wrote {out_path}:\n{json}");
        return;
    }

    let mut records: Vec<String> = Vec::new();
    for &n in &sizes {
        eprintln!("generating n = {n}...");
        let (g, family) = graph_for(n);
        for &t in &threads {
            eprintln!("measuring n = {n}, threads = {t} ({samples} samples/phase)...");
            records.push(record_for(&g, family, n, t, samples));
        }
        if ride_along && RIDE_ALONG_SIZES.contains(&n) {
            eprintln!("measuring ride-along protocols at n = {n}...");
            records.push(ride_along_record(
                &g,
                family,
                n,
                samples,
                "GroupedLrMatching",
                |seed| {
                    black_box(mwm_grouped(&g, seed));
                },
            ));
            records.push(ride_along_record(
                &g,
                family,
                n,
                samples,
                "RandomizedColoring",
                |seed| {
                    black_box(run_protocol(
                        &g,
                        SimConfig::congest_for(&g),
                        |_| RandomizedColoring::new(),
                        seed,
                    ));
                },
            ));
            records.push(ride_along_record(&g, family, n, samples, "Alg2", |seed| {
                black_box(alg2(&g, &Alg2Config::default(), seed));
            }));
        }
    }
    // The append semantics (array creation, legacy single-object
    // wrapping, corrupt-file refusal) live in the shared ledger module so
    // the perf baseline and the conformance harness cannot drift apart.
    let json = congest_bench::ledger::append_to_file(&out_path, &records);
    println!("wrote {out_path}:\n{json}");
}
