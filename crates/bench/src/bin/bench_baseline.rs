//! Machine-readable engine performance baseline.
//!
//! Times the three phases of the canonical gnp-1000 Luby-MIS workload —
//! `Engine::build`, `Engine::run`, and `Engine::run_parallel` — and writes
//! the medians to `BENCH_engine.json` (first CLI argument overrides the
//! path). The JSON is checked into the repository so successive PRs leave
//! a perf trajectory; CI and reviewers diff it rather than re-deriving
//! numbers from criterion logs.
//!
//! ```text
//! cargo run --release -p congest-bench --bin bench_baseline
//! ```

use congest_graph::generators;
use congest_mis::LubyMis;
use congest_sim::{Engine, SimConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Timed samples per phase; the median is robust to scheduler noise.
const SAMPLES: usize = 21;

/// Median of a sample set in nanoseconds.
fn median_ns(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Collects SAMPLES timings from `f` (which returns the ns of just the
/// phase it measures, so setup like `Engine::build` stays outside the
/// timed window) and returns the median.
fn measure(mut f: impl FnMut() -> u128) -> u128 {
    // One warm-up pass so first-touch page faults don't land in sample 0.
    f();
    let samples = (0..SAMPLES).map(|_| f()).collect();
    median_ns(samples)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let n = 1_000usize;
    let mut rng = SmallRng::seed_from_u64(n as u64);
    let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
    let config = SimConfig::congest_for(&g);

    let build_ns = measure(|| {
        let start = Instant::now();
        black_box(Engine::build(&g, config.clone(), |_| LubyMis::new()));
        start.elapsed().as_nanos()
    });
    let mut seed = 0u64;
    let run_ns = measure(|| {
        seed += 1;
        let engine = Engine::build(&g, config.clone(), |_| LubyMis::new());
        let start = Instant::now();
        black_box(engine.run(seed));
        start.elapsed().as_nanos()
    });
    seed = 0;
    let run_parallel_ns = measure(|| {
        seed += 1;
        let engine = Engine::build(&g, config.clone(), |_| LubyMis::new());
        let start = Instant::now();
        black_box(engine.run_parallel(seed));
        start.elapsed().as_nanos()
    });

    let json = format!(
        "{{\n  \"bench\": \"engine_gnp_luby\",\n  \"graph\": {{ \"family\": \"gnp\", \"n\": {n}, \"p\": {p}, \"seed\": {n}, \"edges\": {m} }},\n  \"protocol\": \"LubyMis\",\n  \"samples\": {SAMPLES},\n  \"median_ns\": {{\n    \"build\": {build_ns},\n    \"run\": {run_ns},\n    \"run_parallel\": {run_parallel_ns}\n  }}\n}}\n",
        p = 8.0 / n as f64,
        m = g.num_edges(),
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("wrote {out_path}:\n{json}");
}
