//! Table 1, row 1 — MaxIS Δ-approx / MWM 2-approx in `O(MIS(G)·log W)`
//! rounds, randomized (Algorithm 2 / Theorem 2.3, Theorem 2.10).
//!
//! Sweeps `n` and `W` on random regular graphs; reports measured rounds
//! against the `MIS(G)·log W` prediction, and approximation ratios on
//! small instances against brute-force MWIS.
//!
//! Run with: `cargo run --release --bin table1_row1`

use congest_approx::matching::mwm_lr_randomized;
use congest_approx::maxis::{alg2, Alg2Config};
use congest_bench::{logdelta_over_loglogdelta, mean, pm, Table};
use congest_exact::{brute_force_mwis, max_weight_matching_oracle};
use congest_graph::generators;
use congest_mis::LubyMis;
use congest_sim::{run_protocol, SimConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SEEDS: u64 = 10;

fn main() {
    println!("# Table 1 row 1: randomized Δ-approx MaxIS in O(MIS(G)·log W)\n");

    // --- rounds vs n and W ----------------------------------------------
    let mut t = Table::new(&[
        "n",
        "Δ",
        "W",
        "alg2 rounds",
        "MIS(G) rounds",
        "log₂W",
        "rounds/(MIS·logW)",
    ]);
    for &n in &[64usize, 256, 1024] {
        for &w in &[1u64, 16, 256, 4096] {
            let mut rng = SmallRng::seed_from_u64(n as u64 ^ w);
            let mut rounds = Vec::new();
            let mut mis_rounds = Vec::new();
            for seed in 0..SEEDS {
                let mut g = generators::random_regular(n, 4, &mut rng);
                if w > 1 {
                    generators::randomize_node_weights(&mut g, w, &mut rng);
                }
                let run = alg2(&g, &Alg2Config::default(), seed);
                rounds.push(run.rounds as f64);
                let mis = run_protocol(&g, SimConfig::congest_for(&g), |_| LubyMis::new(), seed);
                mis_rounds.push(mis.stats.rounds as f64);
            }
            let logw = (w.max(2) as f64).log2();
            let ratio = mean(&rounds) / (mean(&mis_rounds) * logw);
            t.row(vec![
                n.to_string(),
                "4".into(),
                w.to_string(),
                pm(&rounds),
                pm(&mis_rounds),
                format!("{logw:.0}"),
                format!("{ratio:.2}"),
            ]);
        }
    }
    t.print();
    println!("\nPrediction: the last column (rounds normalised by MIS(G)·log W) stays");
    println!("roughly constant across the sweep — the O(MIS(G)·log W) shape.\n");

    // --- approximation ratios on small graphs ---------------------------
    let mut t2 = Table::new(&["graph", "Δ", "w(ALG)", "w(OPT)", "OPT/ALG", "bound Δ"]);
    let mut rng = SmallRng::seed_from_u64(42);
    for trial in 0..6 {
        let mut g = generators::gnp(16, 0.25, &mut rng);
        generators::randomize_node_weights(&mut g, 64, &mut rng);
        let opt = brute_force_mwis(&g).weight(&g);
        let run = alg2(&g, &Alg2Config::default(), trial);
        let alg = run.independent_set.weight(&g);
        t2.row(vec![
            format!("gnp16 #{trial}"),
            g.max_degree().to_string(),
            alg.to_string(),
            opt.to_string(),
            format!("{:.2}", opt as f64 / alg as f64),
            g.max_degree().to_string(),
        ]);
    }
    println!("## Δ-approximation check (paper guarantee: OPT/ALG ≤ Δ)\n");
    t2.print();

    // --- 2-approx matching (Theorem 2.10, randomized row) ---------------
    let mut t3 = Table::new(&[
        "graph",
        "w(ALG)",
        "w(OPT)",
        "OPT/ALG",
        "bound",
        "line rounds",
    ]);
    for trial in 0..6 {
        let mut g = generators::random_bipartite(12, 12, 0.3, &mut rng);
        generators::randomize_edge_weights(&mut g, 256, &mut rng);
        if g.num_edges() == 0 {
            continue;
        }
        let opt = max_weight_matching_oracle(&g)
            .expect("bipartite")
            .weight(&g);
        let run = mwm_lr_randomized(&g, &Alg2Config::default(), trial);
        let alg = run.matching.weight(&g);
        t3.row(vec![
            format!("bip12 #{trial}"),
            alg.to_string(),
            opt.to_string(),
            format!("{:.2}", opt as f64 / alg as f64),
            "2.00".into(),
            run.line_rounds.to_string(),
        ]);
    }
    println!("\n## 2-approx MWM on L(G) (Theorem 2.10, randomized)\n");
    t3.print();
    let _ = logdelta_over_loglogdelta(4);
}
