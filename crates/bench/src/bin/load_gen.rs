//! Load generator for the matching service (`crates/service`).
//!
//! Drives hundreds of thousands of simulated requests through the
//! batched in-process frontend over a (shards × max-batch) matrix and
//! *appends* one record per cell — throughput plus p50/p95/p99 request
//! latency, response-kind counts, and cache behaviour — to
//! `SERVICE_engine.json`, the checked-in JSON-array ledger successive
//! PRs extend (same storage convention as `BENCH_engine.json`; see
//! [`congest_bench::ledger`]).
//!
//! ```text
//! cargo run --release -p congest-bench --bin load_gen \
//!     [-- PATH] [--requests N] [--nodes N] [--clients C] \
//!     [--shards a,b] [--batches a,b] [--mutate-every K]
//! ```
//!
//! The workload is a read-mostly mix: independence and mate lookups
//! dominate, matching/MIS queries draw from a small seed pool so the
//! fingerprint cache carries most of them, and one designated mutator
//! client periodically applies a small delta batch (invalidating the
//! caches and exercising incremental repair). All mutations go through
//! that single client's mirror of the graph, so every submitted op is
//! valid and an `Error` response is a real service bug — the run
//! asserts there are none.
//!
//! `--requests` is the total per cell, split across `--clients` client
//! threads (default 4 × 50k = 200k per cell, 4 cells — well into the
//! "hundreds of thousands" the service tier is sized for; CI uses a
//! tiny count, same schema).

// Wall-clock measurement and CLI parsing are this binary's entire job;
// the workspace-wide ban (clippy.toml / congest-lint
// no-ambient-nondeterminism) targets protocol code, not the bench tier.
#![allow(clippy::disallowed_methods)]

use congest_graph::{generators, DeltaGraph, Graph, NodeId};
use congest_service::{
    DeltaOp, MatchingService, Request, Response, ServiceClient, ServiceConfig, ServiceServer,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Default total requests per (shards × max-batch) cell.
const DEFAULT_REQUESTS: usize = 200_000;

/// Default service graph size (average degree 8).
const DEFAULT_NODES: usize = 2_000;

/// Default client threads the per-cell request budget is split across.
const DEFAULT_CLIENTS: usize = 4;

/// Default shard counts of the matrix.
const DEFAULT_SHARDS: [usize; 2] = [1, 4];

/// Default max-batch values of the matrix.
const DEFAULT_BATCHES: [usize; 2] = [1, 16];

/// The mutator client applies one delta batch every this many of its
/// own requests.
const DEFAULT_MUTATE_EVERY: usize = 2_048;

/// Per-response-kind counters a client accumulates locally.
#[derive(Clone, Copy, Default)]
struct Counts {
    matching: u64,
    mis: u64,
    independent: u64,
    mate: u64,
    applied: u64,
    fingerprint: u64,
    stats: u64,
    overloaded: u64,
    error: u64,
}

impl Counts {
    fn absorb(&mut self, resp: &Response) {
        match resp {
            Response::Matching { .. } => self.matching += 1,
            Response::Mis { .. } => self.mis += 1,
            Response::Independent(_) => self.independent += 1,
            Response::Mate { .. } => self.mate += 1,
            Response::Applied { .. } => self.applied += 1,
            Response::FingerprintIs(_) => self.fingerprint += 1,
            Response::StatsSnapshot { .. } => self.stats += 1,
            Response::Overloaded => self.overloaded += 1,
            Response::Error(_) => self.error += 1,
        }
    }

    fn merge(&mut self, other: &Counts) {
        self.matching += other.matching;
        self.mis += other.mis;
        self.independent += other.independent;
        self.mate += other.mate;
        self.applied += other.applied;
        self.fingerprint += other.fingerprint;
        self.stats += other.stats;
        self.overloaded += other.overloaded;
        self.error += other.error;
    }
}

/// Draws a read-only request against slot space `0..n`. Seeds for the
/// matching/MIS queries come from a pool of 4 so the cache serves the
/// bulk of them between mutations.
fn draw_read(rng: &mut SmallRng, n: u32) -> Request {
    match rng.random_range(0..100u32) {
        0..=39 => {
            let k = rng.random_range(2..=4usize);
            Request::IsIndependent {
                nodes: (0..k).map(|_| rng.random_range(0..n)).collect(),
            }
        }
        40..=69 => Request::IsMatched {
            node: rng.random_range(0..n),
        },
        70..=79 => Request::Fingerprint,
        80..=89 => Request::MatchUsers {
            seed: rng.random_range(0..4u64),
        },
        90..=97 => Request::MisQuery {
            seed: rng.random_range(0..4u64),
        },
        _ => Request::Stats,
    }
}

/// Draws a small, always-valid delta batch against the mutator's
/// mirror, applying it to the mirror as a side effect.
fn draw_mutation(rng: &mut SmallRng, mirror: &mut DeltaGraph) -> Vec<DeltaOp> {
    let mut ops = Vec::new();
    for _ in 0..rng.random_range(1..=3usize) {
        let alive: Vec<u32> = (0..mirror.num_slots() as u32)
            .filter(|&v| mirror.is_alive(NodeId(v)))
            .collect();
        match rng.random_range(0..4u32) {
            0 if alive.len() >= 2 => {
                let u = alive[rng.random_range(0..alive.len())];
                let v = alive[rng.random_range(0..alive.len())];
                if u != v && !mirror.has_edge(NodeId(u), NodeId(v)) {
                    let w = rng.random_range(1..=32u64);
                    mirror.insert_edge(NodeId(u), NodeId(v), w);
                    ops.push(DeltaOp::InsertEdge(u, v, w));
                }
            }
            1 => {
                // Remove a live edge of a random live node, if any.
                let v = alive[rng.random_range(0..alive.len())];
                if let Some((u, _)) = mirror.neighbors(NodeId(v)).first() {
                    let u = u.0;
                    mirror.remove_edge(NodeId(v), NodeId(u));
                    ops.push(DeltaOp::RemoveEdge(v, u));
                }
            }
            2 => {
                let w = rng.random_range(1..=8u64);
                mirror.add_node(w);
                ops.push(DeltaOp::AddNode(w));
            }
            _ if alive.len() > 2 => {
                let v = alive[rng.random_range(0..alive.len())];
                mirror.remove_node(NodeId(v));
                ops.push(DeltaOp::RemoveNode(v));
            }
            _ => {}
        }
    }
    // The mirror log is not consumed here; drain it so it can't grow
    // without bound across the run.
    let _ = mirror.take_log();
    ops
}

/// Sorted-percentile in nanoseconds (`q` in 0..=100).
fn percentile_ns(sorted: &[u128], q: usize) -> u128 {
    let idx = (sorted.len().saturating_sub(1)) * q / 100;
    sorted[idx]
}

struct CellResult {
    counts: Counts,
    latencies_ns: Vec<u128>,
    wall_ns: u128,
    batches_served: u64,
    max_batch_seen: u64,
    cache_hits: u64,
    cache_misses: u64,
    fingerprint: u64,
}

/// Runs one (shards, max_batch) cell: spawns the service and `clients`
/// threads splitting `requests` between them, client 0 doubling as the
/// sole mutator.
fn run_cell(
    g: &Graph,
    shards: usize,
    max_batch: usize,
    requests: usize,
    clients: usize,
    mutate_every: usize,
) -> CellResult {
    let service = MatchingService::new(
        g.clone(),
        ServiceConfig {
            shards,
            max_batch,
            ..ServiceConfig::default()
        },
    );
    let server = ServiceServer::spawn(service);
    let n0 = g.num_nodes() as u32;
    let start = Instant::now();
    let mut worker_results: Vec<(Counts, Vec<u128>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client: ServiceClient = server.client();
                let quota = requests / clients + usize::from(c < requests % clients);
                let mirror = (c == 0).then(|| DeltaGraph::new(g.clone()));
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x10AD + c as u64);
                    let mut mirror = mirror;
                    let mut counts = Counts::default();
                    let mut latencies = Vec::with_capacity(quota);
                    for i in 0..quota {
                        let req = match &mut mirror {
                            Some(m) if i > 0 && i % mutate_every == 0 => {
                                let ops = draw_mutation(&mut rng, m);
                                if ops.is_empty() {
                                    draw_read(&mut rng, n0)
                                } else {
                                    Request::ApplyDeltas { ops }
                                }
                            }
                            _ => draw_read(&mut rng, n0),
                        };
                        let t = Instant::now();
                        let resp = client.request(req);
                        latencies.push(t.elapsed().as_nanos());
                        counts.absorb(&resp);
                        if let Response::Error(msg) = &resp {
                            panic!("client {c} request {i} failed: {msg}");
                        }
                    }
                    (counts, latencies)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_ns = start.elapsed().as_nanos();
    let batches_served = server.client().batches_served();
    let max_batch_seen = server.client().max_batch_seen();
    let service = server.shutdown();

    let mut counts = Counts::default();
    let mut latencies_ns = Vec::with_capacity(requests);
    for (c, lat) in worker_results.drain(..) {
        counts.merge(&c);
        latencies_ns.extend(lat);
    }
    latencies_ns.sort_unstable();
    CellResult {
        counts,
        latencies_ns,
        wall_ns,
        batches_served,
        max_batch_seen,
        cache_hits: service.stats().cache_hits,
        cache_misses: service.stats().cache_misses,
        fingerprint: service.fingerprint(),
    }
}

fn record_for(g: &Graph, n: usize, shards: usize, max_batch: usize, r: &CellResult) -> String {
    let p = 8.0 / n as f64;
    let total = r.latencies_ns.len();
    let throughput_rps = total as f64 * 1e9 / r.wall_ns as f64;
    let c = &r.counts;
    format!(
        "  {{\n    \"suite\": \"service\",\n    \"bench\": \"load_gen\",\n    \"graph\": {{ \"family\": \"gnp\", \"n\": {n}, \"p\": {p}, \"seed\": {n}, \"edges\": {m} }},\n    \"shards\": {shards},\n    \"max_batch\": {max_batch},\n    \"requests\": {total},\n    \"responses\": {{ \"matching\": {matching}, \"mis\": {mis}, \"independent\": {independent}, \"mate\": {mate}, \"applied\": {applied}, \"fingerprint\": {fingerprint}, \"stats\": {stats}, \"overloaded\": {overloaded}, \"error\": {error} }},\n    \"cache\": {{ \"hits\": {hits}, \"misses\": {misses} }},\n    \"batches_served\": {batches},\n    \"max_batch_seen\": {max_seen},\n    \"final_fingerprint\": {fp},\n    \"throughput_rps\": {throughput_rps:.1},\n    \"latency_ns\": {{ \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99} }}\n  }}",
        m = g.num_edges(),
        matching = c.matching,
        mis = c.mis,
        independent = c.independent,
        mate = c.mate,
        applied = c.applied,
        fingerprint = c.fingerprint,
        stats = c.stats,
        overloaded = c.overloaded,
        error = c.error,
        hits = r.cache_hits,
        misses = r.cache_misses,
        batches = r.batches_served,
        max_seen = r.max_batch_seen,
        fp = r.fingerprint,
        p50 = percentile_ns(&r.latencies_ns, 50),
        p95 = percentile_ns(&r.latencies_ns, 95),
        p99 = percentile_ns(&r.latencies_ns, 99),
    )
}

/// Parses a comma-separated list of positive integers.
fn parse_list(flag: &str, v: &str) -> Vec<usize> {
    let xs: Vec<usize> = v
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("{flag} entries must be integers, got {s:?}"))
        })
        .collect();
    assert!(!xs.is_empty(), "{flag} needs at least one value");
    assert!(xs.iter().all(|&x| x > 0), "{flag} entries must be positive");
    xs
}

fn main() {
    let mut out_path = "SERVICE_engine.json".to_string();
    let mut requests = DEFAULT_REQUESTS;
    let mut nodes = DEFAULT_NODES;
    let mut clients = DEFAULT_CLIENTS;
    let mut shards: Vec<usize> = DEFAULT_SHARDS.to_vec();
    let mut batches: Vec<usize> = DEFAULT_BATCHES.to_vec();
    let mut mutate_every = DEFAULT_MUTATE_EVERY;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Option<String> {
            if arg == name {
                Some(
                    args.next()
                        .unwrap_or_else(|| panic!("{name} needs a value")),
                )
            } else {
                arg.strip_prefix(&format!("{name}=")).map(str::to_string)
            }
        };
        if let Some(v) = take("--requests") {
            requests = v.parse().expect("--requests value must be an integer");
            assert!(requests > 0, "--requests must be positive");
        } else if let Some(v) = take("--nodes") {
            nodes = v.parse().expect("--nodes value must be an integer");
            assert!(nodes > 0, "--nodes must be positive");
        } else if let Some(v) = take("--clients") {
            clients = v.parse().expect("--clients value must be an integer");
            assert!(clients > 0, "--clients must be positive");
        } else if let Some(v) = take("--shards") {
            shards = parse_list("--shards", &v);
        } else if let Some(v) = take("--batches") {
            batches = parse_list("--batches", &v);
        } else if let Some(v) = take("--mutate-every") {
            mutate_every = v.parse().expect("--mutate-every value must be an integer");
            assert!(mutate_every > 0, "--mutate-every must be positive");
        } else if arg.starts_with('-') {
            // Don't let a flag typo silently become the output path.
            panic!(
                "unknown flag {arg}; usage: load_gen [PATH] [--requests N] [--nodes N] \
                 [--clients C] [--shards a,b] [--batches a,b] [--mutate-every K]"
            );
        } else {
            out_path = arg;
        }
    }

    let mut rng = SmallRng::seed_from_u64(nodes as u64);
    let mut g = generators::gnp(nodes, 8.0 / nodes as f64, &mut rng);
    generators::randomize_edge_weights(&mut g, 32, &mut rng);

    let mut records = Vec::new();
    for &s in &shards {
        for &b in &batches {
            eprintln!(
                "load_gen: n = {nodes}, shards = {s}, max_batch = {b}, \
                 {requests} requests over {clients} clients..."
            );
            let cell = run_cell(&g, s, b, requests, clients, mutate_every);
            eprintln!(
                "load_gen: shards = {s}, max_batch = {b}: {rps:.0} req/s, p50 {p50} ns, \
                 {hits} cache hits / {misses} misses, max batch {mb}",
                rps = cell.latencies_ns.len() as f64 * 1e9 / cell.wall_ns as f64,
                p50 = percentile_ns(&cell.latencies_ns, 50),
                hits = cell.cache_hits,
                misses = cell.cache_misses,
                mb = cell.max_batch_seen,
            );
            records.push(record_for(&g, nodes, s, b, &cell));
        }
    }
    let json = congest_bench::ledger::append_to_file(&out_path, &records);
    println!("wrote {out_path}:\n{json}");
}
