//! Ablation A3 — why the independent set gates the weight reductions.
//!
//! The paper's introductory star example: if every node performs its
//! local-ratio reduction simultaneously, all weights can go negative at
//! once and *nothing* is selected. Algorithm 2's MIS gating fixes this.
//! This binary reproduces the failure and the fix across star sizes and
//! weight profiles.
//!
//! Run with: `cargo run --release --bin ablation_star`

use congest_approx::maxis::{alg2, naive_parallel_lr, Alg2Config};
use congest_bench::Table;
use congest_exact::brute_force_mwis;
use congest_graph::{generators, NodeId};

fn main() {
    println!("# Ablation A3: ungated parallel local ratio vs Algorithm 2 (star example)\n");
    let mut t = Table::new(&[
        "star leaves",
        "center w",
        "leaf w",
        "naive-parallel weight",
        "alg2 weight",
        "OPT",
    ]);
    for &(leaves, center_w, leaf_w) in &[
        (5usize, 8u64, 3u64), // the paper's shape: center > leaf, center < sum
        (8, 12, 3),
        (16, 20, 2),
        (32, 40, 2),
    ] {
        let mut g = generators::star(leaves + 1);
        g.set_node_weight(NodeId(0), center_w);
        for leaf in 1..=leaves {
            g.set_node_weight(NodeId(leaf as u32), leaf_w);
        }
        let (naive, _) = naive_parallel_lr(&g);
        let gated = alg2(&g, &Alg2Config::default(), 1);
        let opt = brute_force_mwis(&g).weight(&g);
        t.row(vec![
            leaves.to_string(),
            center_w.to_string(),
            leaf_w.to_string(),
            naive.weight(&g).to_string(),
            gated.independent_set.weight(&g).to_string(),
            opt.to_string(),
        ]);
    }
    t.print();
    println!("\nReading: the ungated variant returns weight 0 on every instance");
    println!("(all weights turn negative simultaneously); Algorithm 2's layered MIS");
    println!("gating preserves the Δ-approximation.");
}
