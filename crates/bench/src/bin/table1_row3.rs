//! Table 1, row 3 — `(2+ε)`-approx MWM in `O(log Δ / log log Δ)` rounds
//! (Section 3.1 + Appendix B.1).
//!
//! Sweeps Δ to expose the `log Δ / log log Δ` round shape of the
//! nearly-maximal matching engine, and scores the full weighted pipeline
//! against exact oracles.
//!
//! Run with: `cargo run --release --bin table1_row3`

use congest_approx::fast::{mcm_two_plus_eps, mwm_two_plus_eps};
use congest_bench::{logdelta_over_loglogdelta, mean, pm, Table};
use congest_exact::{blossom_maximum_matching, max_weight_matching_oracle};
use congest_graph::generators;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SEEDS: u64 = 6;

fn main() {
    println!("# Table 1 row 3: (2+ε)-approx matching in O(log Δ / log log Δ)\n");
    let eps = 0.25;

    // --- rounds vs Δ ------------------------------------------------------
    let mut t = Table::new(&[
        "Δ",
        "n",
        "physical rounds",
        "logΔ/loglogΔ",
        "rounds/shape",
        "ratio OPT/ALG (card.)",
    ]);
    for &d in &[4usize, 8, 16, 32, 64, 128] {
        let n = (4 * d).max(64);
        let mut rng = SmallRng::seed_from_u64(d as u64);
        let mut rounds = Vec::new();
        let mut ratios = Vec::new();
        for seed in 0..SEEDS {
            let g = generators::random_regular(n, d, &mut rng);
            let run = mcm_two_plus_eps(&g, eps, seed);
            rounds.push(run.physical_rounds as f64);
            let opt = blossom_maximum_matching(&g).len() as f64;
            if !run.matching.is_empty() {
                ratios.push(opt / run.matching.len() as f64);
            }
        }
        let shape = logdelta_over_loglogdelta(2 * d - 2);
        t.row(vec![
            d.to_string(),
            n.to_string(),
            pm(&rounds),
            format!("{shape:.2}"),
            format!("{:.1}", mean(&rounds) / shape),
            format!("{:.2}", mean(&ratios)),
        ]);
    }
    t.print();
    println!("\nPrediction: rounds/shape stays near-constant (the optimal");
    println!(
        "O(log Δ / log log Δ) complexity); cardinality ratio stays ≤ 2+ε = {:.2}.\n",
        2.0 + eps
    );

    // --- weighted pipeline quality ---------------------------------------
    let mut t2 = Table::new(&["graph", "ε", "w(ALG)", "w(OPT)", "OPT/ALG", "bound 2+ε"]);
    let mut rng = SmallRng::seed_from_u64(99);
    for &eps in &[0.5f64, 0.25] {
        for trial in 0..4u64 {
            let mut g = generators::random_bipartite(14, 14, 0.3, &mut rng);
            generators::randomize_edge_weights(&mut g, 512, &mut rng);
            if g.num_edges() == 0 {
                continue;
            }
            let opt = max_weight_matching_oracle(&g)
                .expect("bipartite")
                .weight(&g);
            let run = mwm_two_plus_eps(&g, eps, trial);
            let alg = run.matching.weight(&g).max(1);
            t2.row(vec![
                format!("bip14 #{trial}"),
                format!("{eps}"),
                alg.to_string(),
                opt.to_string(),
                format!("{:.2}", opt as f64 / alg as f64),
                format!("{:.2}", 2.0 + eps),
            ]);
        }
    }
    println!("## Weighted pipeline (B.1 buckets + LPSP augmentation)\n");
    t2.print();
}
