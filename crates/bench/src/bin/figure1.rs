//! Figure 1 — forward/backward counting of shortest augmenting paths in
//! bipartite graphs (Claims B.5/B.6).
//!
//! Regenerates the figure's computation on random bipartite instances:
//! runs the `2d`-round traversal, cross-checks every per-node count
//! against explicit DFS enumeration, and reports the (path count, round
//! cost) series. The exact graph drawn in the paper's Figure 1 is not
//! recoverable from the text, so the instances here are random layered
//! ones; the *computation* is the figure's (see EXPERIMENTS.md, F1).
//!
//! Run with: `cargo run --release --bin figure1`

use congest_approx::hk::{count_paths, enumerate_augmenting_paths};
use congest_bench::Table;
use congest_graph::{generators, Bipartition, Matching};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!("# Figure 1: augmenting-path counting by forward/backward traversal\n");
    let mut t = Table::new(&[
        "instance",
        "d",
        "paths (traversal)",
        "paths (DFS)",
        "per-node match",
        "rounds (2d)",
    ]);
    let mut rng = SmallRng::seed_from_u64(2017);
    for trial in 0..8u32 {
        let g = generators::random_bipartite(10, 10, 0.3, &mut rng);
        let bp = Bipartition::of(&g).expect("bipartite");
        // Maximal matching ⇒ shortest augmenting paths have length ≥ 3.
        let mut m = Matching::new(&g);
        for e in g.edges() {
            m.try_insert(&g, e);
        }
        // The traversal counts *shortest* augmenting paths (its BFS
        // layering prunes the longer ones — Figure 1's red arrows), so the
        // cross-check runs at the shortest length present, as the paper's
        // phase discipline guarantees when it invokes the traversal.
        let active = vec![true; g.num_nodes()];
        let shortest = [3usize, 5, 7]
            .into_iter()
            .find(|&d| !enumerate_augmenting_paths(&g, &m, &active, d, 1).is_empty());
        let Some(d) = shortest else { continue };
        {
            let trav = count_paths(&g, &bp, &m, d);
            let paths = enumerate_augmenting_paths(&g, &m, &active, d, 1_000_000);
            let traversal_total: f64 = trav.terminals.iter().map(|&b| trav.value[b.index()]).sum();
            let mut brute = vec![0.0f64; g.num_nodes()];
            for p in &paths {
                for v in p {
                    brute[v.index()] += 1.0;
                }
            }
            let all_match = g
                .nodes()
                .all(|v| (trav.through[v.index()] - brute[v.index()]).abs() < 1e-9);
            t.row(vec![
                format!("bip10 #{trial}"),
                d.to_string(),
                format!("{traversal_total:.0}"),
                paths.len().to_string(),
                if all_match {
                    "yes".into()
                } else {
                    "NO".to_string()
                },
                trav.rounds.to_string(),
            ]);
            assert!(all_match, "Claim B.6 violated on instance {trial}, d={d}");
            assert_eq!(
                traversal_total.round() as usize,
                paths.len(),
                "Claim B.5 violated"
            );
        }
    }
    t.print();
    println!("\nEvery per-node count from the 2d-round distributed traversal equals");
    println!("the brute-force enumeration — Claims B.5 and B.6, as illustrated by Figure 1.");
}
