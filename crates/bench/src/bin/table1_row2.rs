//! Table 1, row 2 — deterministic Δ-approx MaxIS / 2-approx MWM in
//! `O(Δ + log* n)` rounds (Algorithm 3; our coloring substitute gives
//! `O(Δ log Δ + log* n)`, see DESIGN.md §substitutions).
//!
//! Sweeps Δ at fixed n and n at fixed Δ, splitting rounds into the
//! coloring stage (`log* n` + reduction) and the local-ratio stage
//! (`O(Δ)`); also shows the round count is independent of `W`.
//!
//! Run with: `cargo run --release --bin table1_row2`

use congest_approx::maxis::alg3;
use congest_bench::Table;
use congest_exact::brute_force_mwis;
use congest_graph::generators;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!("# Table 1 row 2: deterministic Δ-approx MaxIS, O(Δ + log* n) shape\n");

    let mut t = Table::new(&[
        "n",
        "Δ",
        "coloring rounds",
        "LR rounds",
        "total",
        "Δ·log₂Δ (pred. scale)",
    ]);
    let mut rng = SmallRng::seed_from_u64(7);
    for &(n, d) in &[
        (512usize, 2usize),
        (512, 4),
        (512, 8),
        (512, 16),
        (512, 32),
        (128, 8),
        (256, 8),
        (1024, 8),
        (2048, 8),
    ] {
        let mut g = generators::random_regular(n, d, &mut rng);
        generators::randomize_node_weights(&mut g, 1024, &mut rng);
        let run = alg3(&g);
        let pred = d as f64 * (d.max(2) as f64).log2();
        t.row(vec![
            n.to_string(),
            d.to_string(),
            run.coloring_rounds.to_string(),
            run.local_ratio_rounds.to_string(),
            run.rounds.to_string(),
            format!("{pred:.0}"),
        ]);
    }
    t.print();
    println!("\nPrediction: totals scale with Δ (log Δ factor from the KW reduction)");
    println!("and barely move with n (the log* n term) — and never with W:\n");

    let mut t2 = Table::new(&["W", "total rounds (same graph)"]);
    let base = generators::random_regular(256, 8, &mut rng);
    for &w in &[1u64, 64, 4096, 1 << 20] {
        let mut g = base.clone();
        if w > 1 {
            generators::randomize_node_weights(&mut g, w, &mut rng);
        }
        let run = alg3(&g);
        t2.row(vec![w.to_string(), run.rounds.to_string()]);
    }
    t2.print();

    println!("\n## Δ-approximation check (OPT/ALG ≤ Δ)\n");
    let mut t3 = Table::new(&["graph", "Δ", "w(ALG)", "w(OPT)", "OPT/ALG"]);
    for trial in 0..6u64 {
        let mut g = generators::gnp(16, 0.25, &mut rng);
        generators::randomize_node_weights(&mut g, 64, &mut rng);
        let opt = brute_force_mwis(&g).weight(&g);
        let run = alg3(&g);
        let alg = run.independent_set.weight(&g);
        t3.row(vec![
            format!("gnp16 #{trial}"),
            g.max_degree().to_string(),
            alg.to_string(),
            opt.to_string(),
            format!("{:.2}", opt as f64 / alg as f64),
        ]);
    }
    t3.print();
}
