//! Section 4 (Discussion): the almost-maximal independent set.
//!
//! The paper observes that the Section 3.1 algorithm computes, in
//! `O(log Δ / log log Δ)` rounds, an independent set where each node
//! remains (neither in the set nor dominated) with probability at most
//! `2^{−log^{1−γ} Δ}` — tantalizingly close to, but not quite, a full
//! MIS (which would need `2^{−Θ(log Δ)}`). This binary measures the
//! leftover probability as Δ grows, for both the fixed iteration budget
//! and double that budget, showing the gap closing slowly — the open
//! question the paper leaves.
//!
//! Run with: `cargo run --release --bin discussion_almost_mis`

use congest_bench::{mean, Table};
use congest_graph::generators;
use congest_mis::{uncovered_fraction, NearlyMaximalIs, NmisParams};
use congest_sim::{run_protocol, SimConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SEEDS: u64 = 8;

fn leftover(delta: usize, n: usize, params: NmisParams) -> f64 {
    let mut rng = SmallRng::seed_from_u64(delta as u64);
    let mut fracs = Vec::new();
    for seed in 0..SEEDS {
        let g = generators::random_regular(n, delta, &mut rng);
        let outcome = run_protocol(
            &g,
            SimConfig::congest_for(&g),
            |_| NearlyMaximalIs::new(params),
            seed,
        );
        fracs.push(uncovered_fraction(&outcome.into_outputs()));
    }
    mean(&fracs)
}

fn main() {
    println!("# Discussion (§4): almost-maximal IS leftover mass vs Δ\n");
    let mut t = Table::new(&[
        "Δ",
        "iters (budget)",
        "leftover frac",
        "iters (2× budget)",
        "leftover frac (2×)",
    ]);
    for &d in &[8usize, 16, 32, 64, 128] {
        let n = (8 * d).max(128);
        let base = NmisParams::accelerated(d, 0.2, 1.0);
        let double = NmisParams {
            k: base.k,
            iterations: base.iterations.map(|x| 2 * x),
        };
        let f1 = leftover(d, n, base);
        let f2 = leftover(d, n, double);
        t.row(vec![
            d.to_string(),
            base.iterations.unwrap_or(0).to_string(),
            format!("{f1:.4}"),
            double.iterations.unwrap_or(0).to_string(),
            format!("{f2:.4}"),
        ]);
    }
    t.print();
    println!("\nReading: the leftover mass decays quickly with extra budget but is");
    println!("never structurally zero — the log log Δ gap between the almost-maximal");
    println!("IS and a true MIS that Section 4 leaves open.");
}
