//! Appendix B.4 — the alternative `(2+ε)` proposal algorithm.
//!
//! Measures the bipartite algorithm's rounds against the Lemma B.13
//! budget `O(K log 1/ε + log Δ / log K)` and the achieved approximation
//! ratios of both the bipartite and the general-graph wrapper.
//!
//! Run with: `cargo run --release --bin table_b4`

use congest_approx::proposal::{bipartite_proposal, general_proposal, proposal_cycles};
use congest_bench::{mean, pm, Table};
use congest_exact::{blossom_maximum_matching, hopcroft_karp};
use congest_graph::{generators, Bipartition};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SEEDS: u64 = 6;

fn main() {
    println!("# Appendix B.4: proposal algorithm\n");

    let mut t = Table::new(&[
        "Δ",
        "ε",
        "budget cycles",
        "rounds used",
        "ratio OPT/ALG",
        "bound 2+ε",
    ]);
    for &d in &[4usize, 8, 16, 32] {
        for &eps in &[0.5f64, 0.2, 0.05] {
            let mut rng = SmallRng::seed_from_u64(d as u64);
            let budget = proposal_cycles(d, eps);
            let mut rounds = Vec::new();
            let mut ratios = Vec::new();
            for seed in 0..SEEDS {
                let g = generators::random_bipartite(64, 64, d as f64 / 64.0, &mut rng);
                if g.num_edges() == 0 {
                    continue;
                }
                let bp = Bipartition::of(&g).expect("bipartite");
                let opt = hopcroft_karp(&g, &bp).len() as f64;
                if opt == 0.0 {
                    continue;
                }
                let run = bipartite_proposal(&g, &bp, eps, seed);
                rounds.push(run.rounds as f64);
                ratios.push(opt / run.matching.len().max(1) as f64);
            }
            t.row(vec![
                d.to_string(),
                format!("{eps}"),
                budget.to_string(),
                pm(&rounds),
                format!("{:.2}", mean(&ratios)),
                format!("{:.2}", 2.0 + eps),
            ]);
        }
    }
    println!("## Bipartite (B.4.1)\n");
    t.print();

    let mut t2 = Table::new(&["family", "ε", "repetitions", "ratio OPT/ALG", "bound 2+ε"]);
    for &eps in &[0.5f64, 0.2] {
        for (name, n, d) in [("regular-80-4", 80usize, 4usize), ("regular-96-8", 96, 8)] {
            let mut rng = SmallRng::seed_from_u64(n as u64);
            let mut ratios = Vec::new();
            let mut reps = 0;
            for seed in 0..SEEDS {
                let g = generators::random_regular(n, d, &mut rng);
                let opt = blossom_maximum_matching(&g).len() as f64;
                let run = general_proposal(&g, eps, seed);
                reps = run.repetitions;
                ratios.push(opt / run.matching.len().max(1) as f64);
            }
            t2.row(vec![
                name.to_string(),
                format!("{eps}"),
                reps.to_string(),
                format!("{:.2}", mean(&ratios)),
                format!("{:.2}", 2.0 + eps),
            ]);
        }
    }
    println!("\n## General graphs (B.4.2, random bipartitions)\n");
    t2.print();
    println!("\nReading: measured ratios sit well inside 2+ε; the round budget");
    println!("follows Lemma B.13's K-balanced form rather than O(log n).");
}
