//! Table 1, row 4 — `(1+ε)`-approx MCM in `O(log Δ / log log Δ)` rounds
//! (Appendices B.2 LOCAL and B.3 CONGEST).
//!
//! Scores both variants against the exact blossom optimum across graph
//! families and ε values, and reports the deactivated-node fraction (the
//! δ′ failure mass the analysis budgets for).
//!
//! Run with: `cargo run --release --bin table1_row4`

use congest_approx::hk::{mcm_one_plus_eps_congest, mcm_one_plus_eps_local};
use congest_bench::{mean, pm, Table};
use congest_exact::blossom_maximum_matching;
use congest_graph::generators;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SEEDS: u64 = 4;

fn main() {
    println!("# Table 1 row 4: (1+ε)-approx maximum cardinality matching\n");

    let mut t = Table::new(&[
        "family",
        "ε",
        "model",
        "ratio OPT/ALG",
        "bound 1+ε",
        "deactivated frac",
    ]);
    type Family<'a> = (&'a str, Box<dyn Fn(&mut SmallRng) -> congest_graph::Graph>);
    let families: Vec<Family<'_>> = vec![
        (
            "regular-60-3",
            Box::new(|rng| generators::random_regular(60, 3, rng)),
        ),
        (
            "regular-48-4",
            Box::new(|rng| generators::random_regular(48, 4, rng)),
        ),
        ("cycle-40", Box::new(|_| generators::cycle(40))),
        (
            "bip-20-20",
            Box::new(|rng| generators::random_bipartite(20, 20, 0.2, rng)),
        ),
    ];
    for (name, make) in &families {
        for &eps in &[0.5f64, 0.34] {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut ratios_local = Vec::new();
            let mut ratios_congest = Vec::new();
            let mut deact_local = Vec::new();
            let mut deact_congest = Vec::new();
            for seed in 0..SEEDS {
                let g = make(&mut rng);
                let opt = blossom_maximum_matching(&g).len() as f64;
                if opt == 0.0 {
                    continue;
                }
                let l = mcm_one_plus_eps_local(&g, eps, seed);
                ratios_local.push(opt / l.matching.len().max(1) as f64);
                deact_local.push(l.deactivated_fraction);
                let c = mcm_one_plus_eps_congest(&g, eps, seed);
                ratios_congest.push(opt / c.matching.len().max(1) as f64);
                deact_congest.push(c.deactivated as f64 / g.num_nodes() as f64);
            }
            t.row(vec![
                name.to_string(),
                format!("{eps}"),
                "LOCAL (B.2)".into(),
                pm(&ratios_local),
                format!("{:.2}", 1.0 + eps),
                format!("{:.3}", mean(&deact_local)),
            ]);
            t.row(vec![
                name.to_string(),
                format!("{eps}"),
                "CONGEST (B.3)".into(),
                pm(&ratios_congest),
                format!("{:.2}", 1.0 + eps),
                format!("{:.3}", mean(&deact_congest)),
            ]);
        }
    }
    t.print();
    println!("\nPrediction: measured ratio ≤ 1+ε (modulo the deactivated δ′ mass);");
    println!("the (1+ε) rows land well below the 2.0 of the row-1/row-3 algorithms.");
}
