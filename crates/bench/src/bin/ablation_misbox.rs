//! Ablation A4 — Algorithm 2 under different MIS black boxes.
//!
//! Theorem 2.3's bound is `O(MIS(G) · log W)` for *any* black box; this
//! sweep compares the per-cycle random-priority (Luby-style) box against
//! Ghaffari-style dynamic marking, in rounds and solution weight.
//!
//! Run with: `cargo run --release --bin ablation_misbox`

use congest_approx::maxis::{alg2, Alg2Config, MisBox};
use congest_bench::{mean, pm, Table};
use congest_graph::generators;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SEEDS: u64 = 8;

fn main() {
    println!("# Ablation A4: MIS black box inside Algorithm 2\n");
    let boxes = [
        ("random-priority", MisBox::RandomPriority),
        ("ghaffari K=2", MisBox::Ghaffari { k: 2.0 }),
        ("ghaffari K=4", MisBox::Ghaffari { k: 4.0 }),
    ];
    let mut t = Table::new(&["n", "Δ", "W", "MIS box", "rounds", "IS weight"]);
    for &(n, d, w) in &[(256usize, 4usize, 256u64), (256, 16, 256), (1024, 8, 1024)] {
        for (name, mis_box) in boxes {
            let mut rng = SmallRng::seed_from_u64(n as u64 + d as u64);
            let mut rounds = Vec::new();
            let mut weights = Vec::new();
            for seed in 0..SEEDS {
                let mut g = generators::random_regular(n, d, &mut rng);
                generators::randomize_node_weights(&mut g, w, &mut rng);
                let run = alg2(&g, &Alg2Config { mis_box }, seed);
                rounds.push(run.rounds as f64);
                weights.push(run.independent_set.weight(&g) as f64);
            }
            t.row(vec![
                n.to_string(),
                d.to_string(),
                w.to_string(),
                name.to_string(),
                pm(&rounds),
                format!("{:.0}", mean(&weights)),
            ]);
        }
    }
    t.print();
    println!("\nReading: both boxes satisfy the same guarantee; the random-priority");
    println!("box converges in fewer cycles at these scales, while the Ghaffari box");
    println!("is the one that generalizes to the O(log Δ/log log Δ) regime (row 3).");
}
