//! Ablation A2 — naive vs. aggregation-based line-graph simulation
//! (Theorem 2.8).
//!
//! Runs an identical broadcast-style line-graph protocol both ways on
//! complete and random regular graphs and reports the per-physical-edge
//! congestion: `Θ(Δ)` naively, exactly 1 under the Theorem 2.8
//! mechanism, with bit-identical outputs.
//!
//! Run with: `cargo run --release --bin ablation_congestion`

use congest_approx::line::{
    naive_congestion, run_aggregated, run_on_explicit_line_graph, EdgeInfo, EdgeProtocol,
};
use congest_bench::Table;
use congest_graph::generators;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Clone)]
struct Race {
    score: u64,
}
impl EdgeProtocol for Race {
    type Agg = u64;
    type Output = (usize, u64);
    fn identity() -> u64 {
        0
    }
    fn join(a: u64, b: u64) -> u64 {
        a.max(b)
    }
    fn contribution(&self, _round: usize) -> u64 {
        self.score
    }
    fn step(
        &mut self,
        round: usize,
        agg: u64,
        rng: &mut SmallRng,
        _info: &EdgeInfo,
    ) -> Option<(usize, u64)> {
        if self.score > agg && self.score > 0 {
            return Some((round, self.score));
        }
        self.score = rng.random_range(0..1 << 20);
        None
    }
}

fn main() {
    println!("# Ablation A2: line-graph simulation congestion (Theorem 2.8)\n");
    let mut t = Table::new(&[
        "graph",
        "Δ",
        "naive max congestion",
        "naive mean",
        "aggregated",
        "outputs equal",
    ]);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut cases: Vec<(String, congest_graph::Graph)> = vec![];
    for &d in &[4usize, 8, 16, 32] {
        cases.push((format!("complete-{}", d + 1), generators::complete(d + 1)));
    }
    for &d in &[4usize, 8, 16] {
        cases.push((
            format!("regular-64-{d}"),
            generators::random_regular(64, d, &mut rng),
        ));
    }
    for (name, g) in &cases {
        let rounds = 12;
        let naive = run_on_explicit_line_graph(g, |_| Race { score: 0 }, 42, rounds);
        let agg = run_aggregated(g, |_| Race { score: 0 }, 42, rounds);
        let rep = naive_congestion(g, &naive.traces);
        t.row(vec![
            name.clone(),
            g.max_degree().to_string(),
            rep.max_congestion.to_string(),
            format!("{:.2}", rep.mean_congestion),
            "1".into(),
            (naive.outputs == agg.outputs).to_string(),
        ]);
        assert_eq!(
            naive.outputs, agg.outputs,
            "{name}: Theorem 2.8 equivalence broken"
        );
    }
    t.print();
    println!("\nReading: naive congestion tracks Δ (the [Kuh05] overhead); the");
    println!("aggregation mechanism pins it at 1 message per edge per direction —");
    println!("with bit-identical outputs, as Theorem 2.8 requires.");
}
