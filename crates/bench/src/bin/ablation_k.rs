//! Ablation A1 — the `K` trade-off in the nearly-maximal independent set
//! (Section 3.1 / Theorem 3.1).
//!
//! The iteration budget is `β(log Δ / log K + K² log 1/δ)`: larger `K`
//! shrinks the first term and inflates the second, with the paper's
//! optimum at `K = Θ(log^0.1 Δ)`. This sweep measures, per `K`: the
//! iterations until (near-)maximality and the fraction of nodes left
//! undecided at the theoretical budget.
//!
//! Run with: `cargo run --release --bin ablation_k`

use congest_bench::{mean, pm, Table};
use congest_graph::generators;
use congest_mis::{nmis_iterations, uncovered_fraction, NearlyMaximalIs, NmisParams};
use congest_sim::{run_protocol, SimConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SEEDS: u64 = 6;

fn main() {
    println!("# Ablation A1: growth factor K in the nearly-maximal IS\n");
    let delta_fail = 0.05;
    let mut t = Table::new(&["Δ", "K", "budget (iters)", "rounds used", "undecided frac"]);
    for &d in &[16usize, 64, 256] {
        let n = (4 * d).max(128);
        for &k in &[2.0f64, 3.0, 4.0, 6.0] {
            let mut rng = SmallRng::seed_from_u64(d as u64);
            let budget = nmis_iterations(d, k, delta_fail, 1.5);
            let mut rounds = Vec::new();
            let mut undecided = Vec::new();
            for seed in 0..SEEDS {
                let g = generators::random_regular(n, d, &mut rng);
                let params = NmisParams {
                    k,
                    iterations: Some(budget),
                };
                let outcome = run_protocol(
                    &g,
                    SimConfig::congest_for(&g),
                    |_| NearlyMaximalIs::new(params),
                    seed,
                );
                rounds.push(outcome.stats.rounds as f64);
                let results = outcome.into_outputs();
                undecided.push(uncovered_fraction(&results));
            }
            t.row(vec![
                d.to_string(),
                format!("{k}"),
                budget.to_string(),
                pm(&rounds),
                format!("{:.3}", mean(&undecided)),
            ]);
        }
    }
    t.print();
    println!("\nReading: at large Δ, moderate K > 2 buys a smaller budget (the");
    println!("log Δ / log K term) at slightly higher undecided mass (the K² log 1/δ");
    println!("term) — the balance Theorem 3.1 optimizes at K = Θ(log^0.1 Δ).");
}
