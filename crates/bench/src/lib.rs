//! Shared harness utilities for the paper-reproduction binaries.
//!
//! Each binary regenerates one artifact of the paper (a Table 1 row, the
//! Figure 1 computation, or an ablation from DESIGN.md) as a markdown
//! table: parameters on the left, measured quantities (mean ± sd over
//! seeds) in the middle, and the theoretical prediction column on the
//! right, so the *shape* comparison the reproduction is about can be read
//! off directly.

pub mod ledger;

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Formats `mean ± sd` compactly.
pub fn pm(xs: &[f64]) -> String {
    format!("{:.1} ± {:.1}", mean(xs), std_dev(xs))
}

/// A markdown table accumulated row by row.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as github-flavoured markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&line(&self.header));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|", sep.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// `log₂` clamped below at 1 (for prediction columns).
pub fn log2c(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// The `log Δ / log log Δ` prediction shape.
pub fn logdelta_over_loglogdelta(delta: usize) -> f64 {
    let l = log2c(delta as f64);
    l / l.log2().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("| a |"));
        assert!(s.contains("| 1 | 22 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_row() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn shapes() {
        assert!(logdelta_over_loglogdelta(1024) > logdelta_over_loglogdelta(16));
    }
}
