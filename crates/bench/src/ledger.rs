//! Append-only JSON ledgers shared by the perf baseline
//! (`bench_baseline` → `BENCH_engine.json`) and the conformance harness
//! (`harness` → `QUALITY_engine.json`).
//!
//! Both artifacts use the same storage convention: a checked-in **JSON
//! array of records** that successive PRs *append* to, leaving a
//! trajectory that CI and reviewers diff instead of re-deriving numbers.
//! The records themselves are rendered by the producers (this module is
//! schema-agnostic); this module owns the append mechanics, including
//! wrapping a legacy single-object file as the array's first entry and
//! refusing to touch a corrupt file.

use std::fmt::Write as _;

/// Appends `records` (each one rendered JSON value) to the JSON array in
/// `existing`, returning the new file contents. Creates the array if
/// `existing` is blank and wraps a legacy single-object file (the PR 3
/// `BENCH_engine.json` schema) as its first entry.
///
/// # Panics
/// Panics if `existing` holds neither a JSON array nor an object — a
/// truncated or corrupt file. Refusing to wrap garbage beats a confusing
/// parse error at the consumer.
pub fn append_records(existing: &str, records: &[String]) -> String {
    append_records_from(existing, records, "ledger")
}

/// [`append_records`] with a named source (the file path, for
/// [`append_to_file`]) so the corrupt-ledger panic says which file to
/// fix or delete.
fn append_records_from(existing: &str, records: &[String], source: &str) -> String {
    let new_block = records.join(",\n");
    let trimmed = existing.trim();
    if trimmed.is_empty() {
        return format!("[\n{new_block}\n]\n");
    }
    if let Some(body) = trimmed
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .map(str::trim)
    {
        if body.is_empty() {
            format!("[\n{new_block}\n]\n")
        } else {
            format!("[\n{body},\n{new_block}\n]\n")
        }
    } else if trimmed.starts_with('{') && trimmed.ends_with('}') {
        // Legacy single-object schema: keep it as the first trajectory
        // point.
        format!("[\n{trimmed},\n{new_block}\n]\n")
    } else {
        panic!(
            "{source} holds neither a JSON array nor an object \
             (truncated write?); fix or delete it before appending"
        );
    }
}

/// Reads the ledger at `path` (missing file = empty ledger), appends
/// `records`, and writes it back. Returns the full new contents.
///
/// # Panics
/// Panics on a corrupt existing file (see [`append_records`]) or an
/// unwritable `path`.
pub fn append_to_file(path: &str, records: &[String]) -> String {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let json = append_records_from(&existing, records, path);
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write ledger {path}: {e}"));
    json
}

/// Renders a flat JSON object from pre-rendered `"key": value` pairs,
/// indented to sit inside a ledger array. The values are the caller's
/// responsibility (use [`json_str`] for strings).
pub fn json_object(pairs: &[(&str, String)]) -> String {
    let mut out = String::from("  {\n");
    for (i, (k, v)) in pairs.iter().enumerate() {
        let comma = if i + 1 == pairs.len() { "" } else { "," };
        // Nested values arrive with their own leading indent (they were
        // rendered to sit in an array); strip it and re-indent the body
        // so `"key": {` lines up like the flat pairs.
        let v = v.trim_start().replace('\n', "\n    ");
        let _ = writeln!(out, "    \"{k}\": {v}{comma}");
    }
    out.push_str("  }");
    out
}

/// Renders a JSON string literal (quotes + minimal escaping; the ledgers
/// only carry identifier-like strings).
pub fn json_str(s: &str) -> String {
    let escaped: String = s
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            '\n' => vec!['\\', 'n'],
            _ => vec![c],
        })
        .collect();
    format!("\"{escaped}\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_array_from_blank() {
        let out = append_records("", &["  { \"a\": 1 }".into()]);
        assert_eq!(out, "[\n  { \"a\": 1 }\n]\n");
        let out = append_records("  \n", &["  { \"a\": 1 }".into()]);
        assert!(out.starts_with("[\n"));
    }

    #[test]
    fn appends_to_existing_array() {
        let v1 = append_records("", &["  { \"a\": 1 }".into()]);
        let v2 = append_records(&v1, &["  { \"b\": 2 }".into(), "  { \"c\": 3 }".into()]);
        // The existing body is re-embedded trimmed (its outer indentation
        // is not preserved); records keep their own internal layout.
        assert_eq!(v2, "[\n{ \"a\": 1 },\n  { \"b\": 2 },\n  { \"c\": 3 }\n]\n");
    }

    #[test]
    fn wraps_legacy_single_object() {
        let out = append_records("{ \"old\": true }", &["  { \"new\": 1 }".into()]);
        assert_eq!(out, "[\n{ \"old\": true },\n  { \"new\": 1 }\n]\n");
    }

    #[test]
    fn appends_to_empty_array() {
        let out = append_records("[]", &["  { \"a\": 1 }".into()]);
        assert_eq!(out, "[\n  { \"a\": 1 }\n]\n");
    }

    #[test]
    #[should_panic(expected = "neither a JSON array nor an object")]
    fn refuses_corrupt_ledger() {
        append_records("[ { \"trunc", &["  {}".into()]);
    }

    #[test]
    fn object_rendering_round_trips_shape() {
        let obj = json_object(&[
            ("name", json_str("a\"b")),
            ("n", "12".into()),
            ("flag", "true".into()),
        ]);
        assert_eq!(
            obj,
            "  {\n    \"name\": \"a\\\"b\",\n    \"n\": 12,\n    \"flag\": true\n  }"
        );
    }
}
