//! Root package of the `congest-approx` workspace.
//!
//! This crate holds no algorithm code; it exists so the end-to-end
//! programs in `examples/` (quickstart, market matching, wireless
//! scheduling, …) have a package to live in. The actual library surface
//! is split across the workspace crates:
//!
//! * [`congest_graph`] — graphs, generators, solution containers.
//! * [`congest_sim`] — the synchronous CONGEST/LOCAL round engine.
//! * [`congest_approx`] — the paper's approximation algorithms.
//! * [`congest_exact`] — exact baselines (blossom, Hopcroft–Karp, …).
//!
//! They are re-exported here so examples and downstream experiments can
//! reach everything through one dependency.

pub use congest_approx;
pub use congest_exact;
pub use congest_graph;
pub use congest_sim;
